open Ferrite_machine
open Insn

(* Decode-cache entry: instructions are one aligned word, so a single page
   backs each entry; it is valid while that page's generation counter is
   unchanged (stores, pokes, injected flips, remaps and restores bump it). *)
type dentry = {
  mutable d_pc : int;
  mutable d_insn : Insn.t;
  mutable d_word : int;  (* the raw word [d_insn] was decoded from *)
  mutable d_cost : int;  (* cycles_of_insn, cached with the decode *)
  mutable d_pg : Memory.page;
  mutable d_wg : int;
  mutable d_warm : bool;  (* installed by the post-boot pre-warm pass *)
}

(* Superblock: a straight-line run of decoded instructions flattened into
   parallel arrays and executed in a tight loop with no per-step dispatch
   (no breakpoint poll, no decode-cache probe, batched counter accounting).
   Validity is the same page-generation scheme as the decode cache: any
   store, poke, injected flip or restore blit to a backing page bumps its
   generation and the block misses on entry. Micro-ops run through the same
   [exec]/[data_read]/[data_write]/fault-delivery paths as [step], so the
   layer is observationally invisible. *)
type sblock = {
  mutable b_pc : int;  (* entry pc, or -1 *)
  mutable b_len : int;
  b_insns : Insn.t array;
  b_pcs : int array;  (* per micro-op pc (non-contiguous across branches) *)
  b_succ : int array;  (* expected post-exec pc: the followed branch target
                          for b/bl/predicted bc, else the fall-through *)
  b_flags : int array;  (* bits 0-15 cycle cost; bit 16 cf; bit 17 may-store *)
  mutable b_pg1 : Memory.page;  (* backing pages (at most two distinct) *)
  mutable b_wg1 : int;
  mutable b_pg2 : Memory.page;
  mutable b_wg2 : int;
}

type t = {
  mem : Memory.t;
  gpr : int array;
  mutable pc : int;
  mutable lr : int;
  mutable ctr : int;
  mutable cr : int;
  mutable xer : int;
  mutable msr : int;
  sprs : int array;
  sr : int array;
  sr_poisoned : bool array;
  dr : Debug_regs.t;
  counters : Counters.t;
  stop_addr : int;
  mutable translation_broken : bool;
  mutable bat_poisoned : bool;
  mutable sdr1_poisoned : bool;
  mutable btic_poisoned : bool;
  mutable last_indirect_target : int;
  mutable pending_hit : Debug_regs.data_hit option;
  mutable stopped : bool;
  mutable last_store_addr : int;
  dcache : dentry array;
  dc_enabled : bool;
  mutable dc_hits : int;
  mutable dc_misses : int;
  mutable dc_streak : int;  (* consecutive misses; long streaks bypass insert *)
  mutable last_cost : int;  (* cycle cost of the insn decode_at just returned *)
  sbcache : sblock array;
  mutable sb_enabled : bool;
  mutable sb_hits : int;  (* block entries served from the cache *)
  mutable sb_blocks : int;  (* blocks built *)
  mutable sb_insns : int;  (* micro-ops retired inside blocks *)
  mutable sb_fallbacks : int;  (* precise-interpreter excursions *)
  mutable dc_warm_hits : int;  (* decode hits on pre-warmed entries *)
  mutable prewarmed : int;  (* entries + blocks installed by [prewarm] *)
  mutable warming : bool;  (* inside [prewarm]: mark inserts as warm *)
}

let msr_ee = 0x8000
let msr_pr = 0x4000
let msr_me = 0x1000
let msr_ir = 0x0020
let msr_dr = 0x0010

let msr_reset = msr_ee lor msr_me lor msr_ir lor msr_dr lor 0x2

let spr_xer = 1
let spr_lr = 8
let spr_ctr = 9
let spr_srr0 = 26
let spr_srr1 = 27
let spr_sprg0 = 272
let spr_sprg2 = 274
let spr_sdr1 = 25
let spr_hid0 = 1008
let spr_pvr = 287

let sdr1_reset = 0x00FE0000
let hid0_reset = 0x8000C000  (* ICE | DCE style enables *)

let exception_dispatch_cycles = 1100

(* The supervisor SPR file of the MPC7455 as the paper's campaign saw it:
   99 registers, listed with their architectural numbers. *)
let supervisor_sprs =
  [
    ("DSISR", 18); ("DAR", 19); ("DEC", 22); ("SDR1", 25); ("SRR0", 26); ("SRR1", 27);
    ("SPRG0", 272); ("SPRG1", 273); ("SPRG2", 274); ("SPRG3", 275);
    ("EAR", 282); ("TBL", 284); ("TBU", 285); ("PVR", 287);
    ("IBAT0U", 528); ("IBAT0L", 529); ("IBAT1U", 530); ("IBAT1L", 531);
    ("IBAT2U", 532); ("IBAT2L", 533); ("IBAT3U", 534); ("IBAT3L", 535);
    ("DBAT0U", 536); ("DBAT0L", 537); ("DBAT1U", 538); ("DBAT1L", 539);
    ("DBAT2U", 540); ("DBAT2L", 541); ("DBAT3U", 542); ("DBAT3L", 543);
    ("IBAT4U", 560); ("IBAT4L", 561); ("IBAT5U", 562); ("IBAT5L", 563);
    ("IBAT6U", 564); ("IBAT6L", 565); ("IBAT7U", 566); ("IBAT7L", 567);
    ("DBAT4U", 568); ("DBAT4L", 569); ("DBAT5U", 570); ("DBAT5L", 571);
    ("DBAT6U", 572); ("DBAT6L", 573); ("DBAT7U", 574); ("DBAT7L", 575);
    ("MMCR2", 944); ("BAMR", 951); ("MMCR0", 952); ("PMC1", 953); ("PMC2", 954);
    ("SIAR", 955); ("MMCR1", 956); ("PMC3", 957); ("PMC4", 958);
    ("TLBMISS", 980); ("PTEHI", 981); ("PTELO", 982); ("L3PM", 983);
    ("L3ITCR0", 984); ("L3ITCR1", 985); ("L3ITCR2", 986); ("L3ITCR3", 987);
    ("L3OHCR", 988); ("ICTRL2", 989); ("LDSTDB2", 990);
    ("HID0", 1008); ("HID1", 1009); ("IABR", 1010); ("ICTRL", 1011); ("LDSTDB", 1012);
    ("DABR", 1013); ("MSSCR0", 1014); ("MSSSR0", 1015); ("LDSTCR", 1016);
    ("L2CR", 1017); ("L3CR", 1018); ("ICTC", 1019);
    ("THRM1", 1020); ("THRM2", 1021); ("THRM3", 1022); ("PIR", 1023);
  ]

let known_spr =
  let tbl = Hashtbl.create 128 in
  List.iter (fun (_, n) -> Hashtbl.replace tbl n ()) supervisor_sprs;
  List.iter (fun n -> Hashtbl.replace tbl n ()) [ spr_xer; spr_lr; spr_ctr ];
  tbl

let dcache_bits = 12
let dcache_size = 1 lsl dcache_bits
let dcache_mask = dcache_size - 1

(* After this many consecutive misses, stop inserting: the workload is
   marching through instructions it will never revisit (wild execution after
   a corrupted jump), and every insert would promote the freshly decoded
   instruction into the major heap for nothing. Hits reset the streak, so a
   loop that comes back around re-arms caching within one pass. *)
let dc_bypass_streak = 256

let fresh_dentry () =
  {
    d_pc = -1;
    d_insn = B (0, false, false);
    d_word = 0;
    d_cost = 0;
    d_pg = Memory.null_page;
    d_wg = 0;
    d_warm = false;
  }

let sbcache_bits = 11
let sbcache_size = 1 lsl sbcache_bits
let sbcache_mask = sbcache_size - 1

(* 32 micro-ops of 4 bytes. The builder follows direct branches, so the ops
   need not be contiguous; it caps a block at two distinct backing pages so
   two generation checks validate the whole run. *)
let sb_max = 32

let sb_cost_mask = 0xFFFF
let sb_flag_cf = 0x10000
let sb_flag_st = 0x20000

let fresh_sblock () =
  {
    b_pc = -1;
    b_len = 0;
    b_insns = Array.make sb_max Insn.Sync;
    b_pcs = Array.make sb_max 0;
    b_succ = Array.make sb_max 0;
    b_flags = Array.make sb_max 0;
    b_pg1 = Memory.null_page;
    b_wg1 = 0;
    b_pg2 = Memory.null_page;
    b_wg2 = 0;
  }

let create ~mem ~stop_addr =
  let sprs = Array.make 1024 0 in
  sprs.(spr_sdr1) <- sdr1_reset;
  sprs.(spr_hid0) <- hid0_reset;
  sprs.(spr_pvr) <- 0x80010201;  (* 7455 *)
  let sr = Array.init 16 (fun i -> 0x20000000 lor i) in
  {
    mem;
    gpr = Array.make 32 0;
    pc = 0;
    lr = 0;
    ctr = 0;
    cr = 0;
    xer = 0;
    msr = msr_reset;
    sprs;
    sr;
    sr_poisoned = Array.make 16 false;
    dr = Debug_regs.create ();
    counters = Counters.create ();
    stop_addr;
    translation_broken = false;
    bat_poisoned = false;
    sdr1_poisoned = false;
    btic_poisoned = false;
    last_indirect_target = Layout.data_base + 0x100;
    pending_hit = None;
    stopped = false;
    last_store_addr = 0;
    dcache = Array.init dcache_size (fun _ -> fresh_dentry ());
    dc_enabled = Memory.fast_paths mem;
    dc_hits = 0;
    dc_misses = 0;
    dc_streak = 0;
    last_cost = 0;
    sbcache = Array.init sbcache_size (fun _ -> fresh_sblock ());
    sb_enabled = Memory.superblocks mem;
    sb_hits = 0;
    sb_blocks = 0;
    sb_insns = 0;
    sb_fallbacks = 0;
    dc_warm_hits = 0;
    prewarmed = 0;
    warming = false;
  }

exception Cpu_fault of Exn.t

let cr_field t n = (t.cr lsr (28 - (4 * n))) land 0xF

let set_cr_field t n v =
  let shift = 28 - (4 * n) in
  t.cr <- (t.cr land lnot (0xF lsl shift) lor ((v land 0xF) lsl shift)) land 0xFFFFFFFF

let cr_bit t bi = (t.cr lsr (31 - bi)) land 1

let so_bit t = if t.xer land 0x80000000 <> 0 then 1 else 0

let record_cr0 t v =
  let s = Word.signed v in
  let f = (if s < 0 then 8 else if s > 0 then 4 else 2) lor so_bit t in
  set_cr_field t 0 f

(* --- memory, translation and watchpoints -------------------------------- *)

let[@inline] check_translation t addr ~fetch ~write =
  if t.translation_broken then
    raise (Cpu_fault (Exn.Machine_check { addr = Some addr }));
  if t.bat_poisoned then begin
    (* a remapped BAT no longer covers the kernel's linear region: the access
       falls through to the (empty) page tables and takes a DSI/ISI *)
    let scrambled = Word.mask (addr lxor 0x28280000) in
    if fetch then raise (Cpu_fault (Exn.Isi { addr = scrambled }))
    else raise (Cpu_fault (Exn.Dsi { addr = scrambled; write; protection = false }))
  end;
  if t.sdr1_poisoned then begin
    let scrambled = Word.mask (addr lxor 0x3C3C0000) in
    if fetch then raise (Cpu_fault (Exn.Isi { addr = scrambled }))
    else raise (Cpu_fault (Exn.Dsi { addr = scrambled; write; protection = false }))
  end;
  if t.sr_poisoned.((addr lsr 28) land 0xF) then begin
    let scrambled = Word.mask (addr lxor 0x0F0F0000) in
    if fetch then raise (Cpu_fault (Exn.Isi { addr = scrambled }))
    else raise (Cpu_fault (Exn.Dsi { addr = scrambled; write; protection = false }))
  end

let[@inline] note_data t addr len write =
  match t.pending_hit with
  | Some _ -> ()
  | None -> (
    match Debug_regs.check_data t.dr ~addr ~len ~is_write:write with
    | Some h -> t.pending_hit <- Some h
    | None -> ())

let width_len = function Byte -> 1 | Half -> 2 | Word -> 4

(* The 7455 handles misaligned scalar loads/stores in hardware; only the
   multi-word and string forms (lmw/stmw here) take an alignment interrupt,
   which is what Table 4's "Alignment" category comes from. *)
let check_multiword_alignment addr =
  if addr land 3 <> 0 then raise (Cpu_fault (Exn.Alignment { addr }))

let data_read t width addr =
  check_translation t addr ~fetch:false ~write:false;
  let v =
    try
      match width with
      | Byte -> Memory.load8 t.mem addr
      | Half -> Memory.load16_be t.mem addr
      | Word -> Memory.load32_be t.mem addr
    with Memory.Fault { addr; kind; _ } ->
      raise
        (Cpu_fault
           (Exn.Dsi { addr; write = false; protection = kind = Memory.Protection }))
  in
  note_data t addr (width_len width) false;
  v

let data_write t width addr v =
  check_translation t addr ~fetch:false ~write:true;
  (try
     match width with
     | Byte -> Memory.store8 t.mem addr v
     | Half -> Memory.store16_be t.mem addr v
     | Word -> Memory.store32_be t.mem addr v
   with Memory.Fault { addr; kind; _ } ->
     raise
       (Cpu_fault (Exn.Dsi { addr; write = true; protection = kind = Memory.Protection })));
  t.last_store_addr <- addr;
  note_data t addr (width_len width) true

let ifetch32 t addr =
  check_translation t addr ~fetch:true ~write:false;
  try Memory.fetch32_be t.mem addr
  with Memory.Fault { addr; _ } -> raise (Cpu_fault (Exn.Isi { addr }))

(* Amortised cycle costs on the 1.0 GHz 7455: shallower pipeline and lower
   relative memory penalty than the P4 model. *)
let cycles_of_insn = function
  | Insn.Load _ | Store _ | Load_idx _ | Store_idx _ -> 7
  | Lmw _ | Stmw _ -> 22
  | Xarith ((Mullw | Mulhw | Mulhwu), _, _, _, _) -> 5
  | Xarith ((Divw | Divwu), _, _, _, _) -> 25
  | Darith (Mulli, _, _, _) -> 5
  | B _ | Bc _ | Bclr _ | Bcctr _ -> 2
  | Rfi -> 30
  | Sync | Isync | Eieio -> 5
  | _ -> 1

(* PC-keyed decode cache over [ifetch32] + [Decode.word]. The translation
   check still runs first on every path, so poisoned MSR/BAT/SDR1/segment
   state raises the same machine check / ISI as the uncached interpreter;
   validity is the backing page's generation counter, so stores, pokes and
   [Engine.flip_code_bit] evict stale entries. Raises [Cpu_fault] like
   [ifetch32] and [Decode.Undefined_opcode] like [Decode.word]. *)
let decode_at t pc =
  if not t.dc_enabled then begin
    let insn = Decode.word (ifetch32 t pc) in
    t.last_cost <- cycles_of_insn insn;
    insn
  end
  else begin
    check_translation t pc ~fetch:true ~write:false;
    let e = Array.unsafe_get t.dcache ((pc lsr 2) land dcache_mask) in
    if e.d_pc = pc && Memory.page_generation e.d_pg = e.d_wg then begin
      t.dc_hits <- t.dc_hits + 1;
      if e.d_warm then t.dc_warm_hits <- t.dc_warm_hits + 1;
      t.dc_streak <- 0;
      t.last_cost <- e.d_cost;
      e.d_insn
    end
    else begin
      let w =
        try Memory.fetch32_be t.mem pc
        with Memory.Fault { addr; _ } -> raise (Cpu_fault (Exn.Isi { addr }))
      in
      if e.d_pc = pc && e.d_word = w then begin
        (* Stale generation but the word itself is unchanged — the page was
           written elsewhere (typical of wild execution that stores into its
           own code page every iteration). [Decode.word] is pure, so the
           cached decode is still exact; refresh the generation and reuse. *)
        (match Memory.page_at_opt t.mem pc with
        | None -> ()
        | Some pg ->
          e.d_pg <- pg;
          e.d_wg <- Memory.page_generation pg);
        t.dc_hits <- t.dc_hits + 1;
        if e.d_warm then t.dc_warm_hits <- t.dc_warm_hits + 1;
        t.dc_streak <- 0;
        t.last_cost <- e.d_cost;
        e.d_insn
      end
      else begin
        t.dc_misses <- t.dc_misses + 1;
        let insn = Decode.word w in
        let cost = cycles_of_insn insn in
        t.last_cost <- cost;
        (* an injected PC can be misaligned; don't cache a fetch that straddles
           two pages (a single generation could not validate it) *)
        (if t.dc_streak < dc_bypass_streak then begin
           t.dc_streak <- t.dc_streak + 1;
           if pc land 0xFFF <= Memory.page_size - 4 then
             match Memory.page_at_opt t.mem pc with
             | None -> ()
             | Some pg ->
               e.d_pc <- pc;
               e.d_insn <- insn;
               e.d_word <- w;
               e.d_cost <- cost;
               e.d_pg <- pg;
               e.d_wg <- Memory.page_generation pg;
               e.d_warm <- t.warming;
               if t.warming then t.prewarmed <- t.prewarmed + 1
         end);
        insn
      end
    end
  end

let decode_cache_stats t = (t.dc_hits, t.dc_misses)

(* --- privileged state ---------------------------------------------------- *)

let privileged t = if t.msr land msr_pr <> 0 then raise (Cpu_fault Exn.Program_privileged)

let apply_msr t v =
  t.msr <- Word.mask v;
  t.translation_broken <- v land msr_ir = 0 || v land msr_dr = 0

let spr_read t spr =
  privileged t;
  if not (Hashtbl.mem known_spr spr) then raise (Cpu_fault Exn.Program_illegal);
  t.sprs.(spr)

(* HID0[BTIC] — enabling the branch-target instruction cache over invalid
   content is the paper's SPR1008 failure mode; the other HID0 bits are
   benign for a running kernel. *)
let hid0_btic = 0x20

(* Only changes to a BAT's effective-address field (BEPI, the high bits)
   re-route the kernel's linear mapping; the WIMG/PP low bits are benign for
   an already-running kernel. *)
let bat_field_change old_v new_v = (old_v lxor new_v) land 0xFFFE0000 <> 0

let is_live_bat spr = spr = 528 || spr = 529 || spr = 536 || spr = 537

let spr_write t spr v =
  privileged t;
  if not (Hashtbl.mem known_spr spr) then raise (Cpu_fault Exn.Program_illegal);
  let old_v = t.sprs.(spr) in
  t.sprs.(spr) <- Word.mask v;
  if spr = spr_sdr1 then t.sdr1_poisoned <- v <> sdr1_reset;
  if spr = spr_hid0 then
    t.btic_poisoned <- v land hid0_btic <> hid0_reset land hid0_btic;
  if is_live_bat spr && bat_field_change old_v v then t.bat_poisoned <- true

(* --- branch condition evaluation ----------------------------------------- *)

let branch_taken t bo bi =
  let bo0 = bo land 16 <> 0 in
  let bo1 = bo land 8 <> 0 in
  let bo2 = bo land 4 <> 0 in
  let bo3 = bo land 2 <> 0 in
  if not bo2 then t.ctr <- Word.sub t.ctr 1;
  let ctr_ok = bo2 || (t.ctr <> 0) <> bo3 in
  let cond_ok = bo0 || (cr_bit t bi = 1) = bo1 in
  ctr_ok && cond_ok

let indirect_target t target =
  let target = target land lnot 3 in
  if t.btic_poisoned then begin
    (* An enabled-but-invalid branch-target instruction cache supplies a stale
       target (the paper's SPR1008/HID0 failure mode, §5.2). *)
    let stale = t.last_indirect_target in
    t.btic_poisoned <- false;
    stale
  end
  else begin
    t.last_indirect_target <- target;
    target
  end

let goto t target =
  t.pc <- Word.mask target;
  if t.pc = t.stop_addr then t.stopped <- true

(* --- trap conditions ------------------------------------------------------ *)

let trap_fires to_ a b =
  let sa = Word.signed a and sb = Word.signed b in
  (to_ land 16 <> 0 && sa < sb)
  || (to_ land 8 <> 0 && sa > sb)
  || (to_ land 4 <> 0 && a = b)
  || (to_ land 2 <> 0 && a < b)
  || (to_ land 1 <> 0 && a > b)

(* --- execution ------------------------------------------------------------ *)

let ea_update t ra addr = if ra <> 0 then t.gpr.(ra) <- addr

let exec t pc insn =
  let g = t.gpr in
  let base ra = if ra = 0 then 0 else g.(ra) in
  match insn with
  | Darith (op, rd, ra, simm) ->
    let v =
      match op with
      | Addi -> Word.add (base ra) simm
      | Addis -> Word.add (base ra) (Word.shl simm 16)
      | Addic -> Word.add g.(ra) simm
      | Mulli -> Word.mul g.(ra) simm
      | Subfic -> Word.sub simm g.(ra)
    in
    g.(rd) <- v
  | Dlogic (op, ra, rs, uimm) ->
    let v =
      match op with
      | Ori -> g.(rs) lor uimm
      | Oris -> g.(rs) lor (uimm lsl 16)
      | Xori -> g.(rs) lxor uimm
      | Xoris -> g.(rs) lxor (uimm lsl 16)
      | Andi_rc -> g.(rs) land uimm
      | Andis_rc -> g.(rs) land (uimm lsl 16)
    in
    g.(ra) <- Word.mask v;
    (match op with Andi_rc | Andis_rc -> record_cr0 t g.(ra) | _ -> ())
  | Load (m, rd, ra, d) ->
    let addr = Word.add (if m.update then g.(ra) else base ra) d in
    let v = data_read t m.width addr in
    let v = if m.algebraic && m.width = Half then Word.sign_extend16 v else v in
    g.(rd) <- v;
    if m.update then ea_update t ra addr
  | Store (m, rs, ra, d) ->
    let addr = Word.add (if m.update then g.(ra) else base ra) d in
    data_write t m.width addr g.(rs);
    if m.update then ea_update t ra addr
  | Load_idx (m, rd, ra, rb) ->
    let addr = Word.add (base ra) g.(rb) in
    let v = data_read t m.width addr in
    let v = if m.algebraic && m.width = Half then Word.sign_extend16 v else v in
    g.(rd) <- v;
    if m.update then ea_update t ra addr
  | Store_idx (m, rs, ra, rb) ->
    let addr = Word.add (base ra) g.(rb) in
    data_write t m.width addr g.(rs);
    if m.update then ea_update t ra addr
  | Lmw (rd, ra, d) ->
    let addr = ref (Word.add (base ra) d) in
    check_multiword_alignment !addr;
    for r = rd to 31 do
      g.(r) <- data_read t Word !addr;
      addr := Word.add !addr 4
    done
  | Stmw (rs, ra, d) ->
    let addr = ref (Word.add (base ra) d) in
    check_multiword_alignment !addr;
    for r = rs to 31 do
      data_write t Word !addr g.(r);
      addr := Word.add !addr 4
    done
  | Cmpi (unsigned, crf, ra, imm) ->
    let a = g.(ra) in
    let f =
      if unsigned then
        if a < imm then 8 else if a > imm then 4 else 2
      else begin
        let a = Word.signed a and b = Word.signed (Word.mask imm) in
        if a < b then 8 else if a > b then 4 else 2
      end
    in
    set_cr_field t crf (f lor so_bit t)
  | Cmp (unsigned, crf, ra, rb) ->
    let a = g.(ra) and b = g.(rb) in
    let f =
      if unsigned then if a < b then 8 else if a > b then 4 else 2
      else begin
        let a = Word.signed a and b = Word.signed b in
        if a < b then 8 else if a > b then 4 else 2
      end
    in
    set_cr_field t crf (f lor so_bit t)
  | Rlwinm (ra, rs, sh, mb, me, rc) ->
    let rotated = Word.rotl g.(rs) sh in
    (* Mask of bits mb..me in big-endian bit numbering (0 = MSB). *)
    let bit i = 1 lsl (31 - i) in
    let mask =
      if mb <= me then begin
        let m = ref 0 in
        for i = mb to me do
          m := !m lor bit i
        done;
        !m
      end
      else begin
        let m = ref 0 in
        for i = 0 to me do
          m := !m lor bit i
        done;
        for i = mb to 31 do
          m := !m lor bit i
        done;
        !m
      end
    in
    g.(ra) <- rotated land mask;
    if rc then record_cr0 t g.(ra)
  | Xarith (op, rd, ra, rb, rc) ->
    let a = g.(ra) and b = g.(rb) in
    let v =
      match op with
      | Add | Addc -> Word.add a b
      | Subf | Subfc -> Word.sub b a
      | Mullw -> Word.mul a b
      | Mulhw ->
        let p = Int64.mul (Int64.of_int (Word.signed a)) (Int64.of_int (Word.signed b)) in
        Int64.to_int (Int64.shift_right p 32) land 0xFFFFFFFF
      | Mulhwu ->
        let p = Int64.mul (Int64.of_int a) (Int64.of_int b) in
        Int64.to_int (Int64.shift_right_logical p 32)
      | Divw ->
        (* Division by zero is boundedly undefined on PowerPC: no trap. *)
        if b = 0 then 0
        else begin
          let q = Word.signed a / Word.signed b in
          Word.mask q
        end
      | Divwu -> if b = 0 then 0 else a / b
    in
    g.(rd) <- v;
    if rc then record_cr0 t v
  | Xlogic (op, ra, rs, rb, rc) ->
    let a = g.(rs) and b = g.(rb) in
    let v =
      match op with
      | And -> a land b
      | Andc -> a land Word.lognot b
      | Or -> a lor b
      | Orc -> a lor Word.lognot b
      | Xor -> a lxor b
      | Nor -> Word.lognot (a lor b)
      | Nand -> Word.lognot (a land b)
      | Eqv -> Word.lognot (a lxor b)
      | Slw ->
        let n = b land 63 in
        if n > 31 then 0 else Word.shl a n
      | Srw ->
        let n = b land 63 in
        if n > 31 then 0 else Word.shr a n
      | Sraw ->
        let n = b land 63 in
        if n > 31 then Word.mask (Word.signed a asr 31) else Word.sar a n
    in
    g.(ra) <- v;
    if rc then record_cr0 t v
  | Srawi (ra, rs, sh, rc) ->
    g.(ra) <- Word.sar g.(rs) sh;
    if rc then record_cr0 t g.(ra)
  | Neg (rd, ra, rc) ->
    g.(rd) <- Word.neg g.(ra);
    if rc then record_cr0 t g.(rd)
  | Extsb (ra, rs, rc) ->
    g.(ra) <- Word.sign_extend8 g.(rs);
    if rc then record_cr0 t g.(ra)
  | Extsh (ra, rs, rc) ->
    g.(ra) <- Word.sign_extend16 g.(rs);
    if rc then record_cr0 t g.(ra)
  | Cntlzw (ra, rs, rc) ->
    let v = g.(rs) in
    let rec count i = if i = 32 then 32 else if v land (1 lsl (31 - i)) <> 0 then i else count (i + 1) in
    g.(ra) <- count 0;
    if rc then record_cr0 t g.(ra)
  | B (li, aa, lk) ->
    if lk then t.lr <- Word.add pc 4;
    goto t (if aa then li else Word.add pc li)
  | Bc (bo, bi, bd, aa, lk) ->
    if lk then t.lr <- Word.add pc 4;
    if branch_taken t bo bi then goto t (if aa then bd else Word.add pc bd)
  | Bclr (bo, bi, lk) ->
    let target = indirect_target t t.lr in
    if lk then t.lr <- Word.add pc 4;
    if branch_taken t bo bi then goto t target
  | Bcctr (bo, bi, lk) ->
    let target = indirect_target t t.ctr in
    if lk then t.lr <- Word.add pc 4;
    if branch_taken t bo bi then goto t target
  | Sc -> raise (Cpu_fault Exn.Unexpected_syscall)
  | Rfi ->
    privileged t;
    apply_msr t t.sprs.(spr_srr1);
    goto t (t.sprs.(spr_srr0) land lnot 3)
  | Tw (to_, ra, rb) ->
    if trap_fires to_ g.(ra) g.(rb) then raise (Cpu_fault Exn.Program_trap)
  | Twi (to_, ra, simm) ->
    if trap_fires to_ g.(ra) (Word.mask simm) then raise (Cpu_fault Exn.Program_trap)
  | Mfspr (rd, spr) -> g.(rd) <- spr_read t spr
  | Mtspr (spr, rs) -> spr_write t spr g.(rs)
  | Mflr rd -> g.(rd) <- t.lr
  | Mtlr rs -> t.lr <- g.(rs)
  | Mfctr rd -> g.(rd) <- t.ctr
  | Mtctr rs -> t.ctr <- g.(rs)
  | Mfxer rd -> g.(rd) <- t.xer
  | Mtxer rs -> t.xer <- g.(rs)
  | Mfmsr rd ->
    privileged t;
    g.(rd) <- t.msr
  | Mtmsr rs ->
    privileged t;
    apply_msr t g.(rs)
  | Mfcr rd -> g.(rd) <- t.cr
  | Mtcrf (crm, rs) ->
    let v = g.(rs) in
    for f = 0 to 7 do
      if crm land (1 lsl (7 - f)) <> 0 then set_cr_field t f ((v lsr (28 - (4 * f))) land 0xF)
    done
  | Sync | Isync | Eieio -> ()

(* --- the step loop -------------------------------------------------------- *)

type step_result =
  | Retired
  | Halted
  | Hit_ibp
  | Hit_dbp of Debug_regs.data_hit
  | Stopped
  | Faulted of Exn.t

let deliver_fault t pc e =
  t.pc <- pc;
  Counters.idle t.counters exception_dispatch_cycles;
  (* With machine checks disabled (MSR[ME]=0) the processor checkstops: no
     crash handler runs and no dump escapes. *)
  match e with
  | Exn.Machine_check _ when t.msr land msr_me = 0 ->
    Faulted (Exn.Software_panic { message = "checkstop" })
  | e -> Faulted e

let step ?(skip_ibp = false) t =
  let pc = t.pc in
  if (not skip_ibp) && Debug_regs.check_exec t.dr pc then Hit_ibp
  else begin
    (match t.pending_hit with Some _ -> t.pending_hit <- None | None -> ());
    t.stopped <- false;
    match decode_at t pc with
    | exception Cpu_fault e -> deliver_fault t pc e
    | exception Decode.Undefined_opcode -> deliver_fault t pc Exn.Program_illegal
    | insn ->
      t.pc <- Word.add pc 4;
      (match exec t pc insn with
      | exception Cpu_fault e -> deliver_fault t pc e
      | () ->
        Counters.retire t.counters ~cost:t.last_cost;
        if t.stopped then Stopped
        else
          match t.pending_hit with
          | Some h -> Hit_dbp h
          | None -> Retired)
  end

(* --- superblock translation ---------------------------------------------- *)

(* Instructions excluded from blocks and executed by the precise [step]:
   [Sc]/[Rfi] raise or rewrite the MSR, and [Mtspr]/[Mtmsr] can poison
   translation, which the per-fetch [check_translation] of the precise path
   must observe on the very next instruction. *)
let is_sb_terminator = function
  | Sc | Rfi | Mtspr _ | Mtmsr _ -> true
  | _ -> false

(* Unconditional redirects. The builder follows [B] (its target is static)
   and ends the block at [Bclr]/[Bcctr], whose targets live in LR/CTR and
   flow through the side-effecting [indirect_target]. [prewarm] also uses
   this set to seed block entry points at redirect fall-throughs. *)
let sb_ends_block = function B _ | Bclr _ | Bcctr _ -> true | _ -> false

let sb_is_cf = function B _ | Bc _ | Bclr _ | Bcctr _ -> true | _ -> false

(* Exact on this ISA: [data_write] is reached only from these forms. *)
let sb_may_store = function Store _ | Store_idx _ | Stmw _ -> true | _ -> false

(* Decode a run of instructions starting at the 4-aligned [pc] into [b],
   following statically-known branch targets: [b]/[bl] continue at the
   target, and a backward [bc] is predicted taken (the common shape of a
   loop back-edge), so tight loops unroll into the block instead of paying
   the block-entry overhead every iteration. [b_succ] records each
   micro-op's expected post-exec pc; execution compares PC against it and
   leaves the block precisely — with PC already exact — on any mispredicted
   or indirect redirect. Returns [true] when at least one micro-op was
   recorded. Stops at capacity, a terminator, an indirect redirect, the
   two-distinct-page cap, or a fetch/decode fault — the faulting pc is left
   outside the block, so the precise interpreter delivers that exception
   with exact semantics if execution ever reaches it. *)
let sb_build t b pc =
  b.b_pc <- -1;
  let n = ref 0 in
  let p = ref pc in
  (* a block is validated by two generation checks, so its micro-ops may
     live on at most two distinct backing pages; [claim] registers the page
     under [addr] and fails on a third *)
  let npg = ref 0 in
  let pg1 = ref Memory.null_page and pg2 = ref Memory.null_page in
  let claim addr =
    match Memory.page_at_opt t.mem addr with
    | None -> false
    | Some pg ->
      if !npg > 0 && pg == !pg1 then true
      else if !npg > 1 && pg == !pg2 then true
      else if !npg = 0 then begin
        pg1 := pg;
        npg := 1;
        true
      end
      else if !npg = 1 then begin
        pg2 := pg;
        npg := 2;
        true
      end
      else false
  in
  (try
     while !n < sb_max do
       (* followed targets must satisfy the same wrap guard as entry pcs *)
       if !p < 0 || !p > 0xFFFFFF00 then raise Exit;
       let insn = decode_at t !p in
       if is_sb_terminator insn then raise Exit;
       if not (claim !p) then raise Exit;
       let next = !p + 4 in
       let succ, ends =
         match insn with
         | B (li, aa, _) ->
           (Word.mask (if aa then li else Word.add !p li), false)
         | Bc (_, _, bd, aa, _) ->
           let target = Word.mask (if aa then bd else Word.add !p bd) in
           if target < !p then (target, false)  (* backward: predict taken *)
           else (next, false)
         | i -> (next, sb_ends_block i)
       in
       b.b_insns.(!n) <- insn;
       b.b_pcs.(!n) <- !p;
       b.b_succ.(!n) <- succ;
       b.b_flags.(!n) <-
         t.last_cost
         lor (if sb_is_cf insn then sb_flag_cf else 0)
         lor (if sb_may_store insn then sb_flag_st else 0);
       incr n;
       p := succ;
       if ends then raise Exit
     done
   with Exit | Cpu_fault _ | Decode.Undefined_opcode -> ());
  !n > 0
  && begin
    if !npg = 1 then pg2 := !pg1;
    b.b_len <- !n;
    b.b_pg1 <- !pg1;
    b.b_wg1 <- Memory.page_generation !pg1;
    b.b_pg2 <- !pg2;
    b.b_wg2 <- Memory.page_generation !pg2;
    b.b_pc <- pc;
    true
  end

(* Run up to [max_steps] instructions, preferring translated superblock
   execution and falling back to the precise [step] whenever translation
   cannot reproduce its observable semantics (armed execute breakpoints,
   poisoned address translation, misaligned or wrapping pc, a terminator
   instruction). Returns [(n, r)] where [n] counts cleanly retired
   instructions and [r] is the first event, or [Retired] when the budget was
   exhausted without one. For [Hit_dbp]/[Stopped] the event-carrying
   instruction has retired (counters include it) but is not part of [n];
   for [Faulted] the faulting instruction did not retire and the exception
   has been delivered exactly as [step] would. *)
let sb_poisoned t =
  t.translation_broken || t.bat_poisoned || t.sdr1_poisoned
  || t.sr_poisoned.(12) || t.sr_poisoned.(13) || t.sr_poisoned.(14)
  || t.sr_poisoned.(15)

let run t ~max_steps =
  if max_steps <= 0 then invalid_arg "Cpu.run: max_steps must be positive";
  let retired = ref 0 in
  let fin = ref None in
  (* [sb_enabled] and the debug registers cannot change inside one [run]
     call; translation poison can, but only under the precise interpreter
     ([Mtspr]/[Mtmsr]/[Rfi] are terminators), so the eligibility chain is
     re-evaluated after fallback excursions instead of at every entry *)
  let forced_static = (not t.sb_enabled) || Debug_regs.exec_armed t.dr in
  let forced = ref (forced_static || sb_poisoned t) in
  while !fin = None && !retired < max_steps do
    let pc = t.pc in
    if
      !forced
      || pc land 3 <> 0
      || pc < 0
      || pc > 0xFFFFFF00  (* a block near the top of the space would wrap *)
    then begin
      t.sb_fallbacks <- t.sb_fallbacks + 1;
      (match step t with
      | Retired | Halted -> incr retired
      | r -> fin := Some r);
      forced := forced_static || sb_poisoned t
    end
    else begin
      let b = Array.unsafe_get t.sbcache ((pc lsr 2) land sbcache_mask) in
      let valid =
        b.b_pc = pc
        && Memory.page_generation b.b_pg1 = b.b_wg1
        && Memory.page_generation b.b_pg2 = b.b_wg2
      in
      if valid then t.sb_hits <- t.sb_hits + 1;
      let have =
        valid
        || t.dc_streak < dc_bypass_streak  (* wild execution: don't build *)
           && (let built = sb_build t b pc in
               if built then t.sb_blocks <- t.sb_blocks + 1;
               built)
      in
      if not have then begin
        t.sb_fallbacks <- t.sb_fallbacks + 1;
        match step t with
        | Retired | Halted -> incr retired
        | r -> fin := Some r
      end
      else begin
        (* the tight loop: no per-step dispatch, batched accounting *)
        let insns = b.b_insns and flags = b.b_flags in
        let pcs = b.b_pcs and succs = b.b_succ in
        let limit =
          let budget = max_steps - !retired in
          if b.b_len < budget then b.b_len else budget
        in
        (match t.pending_hit with Some _ -> t.pending_hit <- None | None -> ());
        t.stopped <- false;
        (* block-invariant: nothing inside a block writes the debug
           registers, so when no watchpoint is armed [pending_hit] can never
           become [Some] and the per-op check is skipped *)
        let watched = Debug_regs.armed_count t.dr > 0 in
        let i = ref 0 in
        let cyc = ref 0 in
        let exit_block = ref false in
        (* the handler is installed once for the whole block, not per
           micro-op; [i] still indexes the faulting micro-op there because it
           is only advanced after a clean return *)
        (try
          while (not !exit_block) && !i < limit do
            let k = !i in
            let mpc = Array.unsafe_get pcs k in
            let fl = Array.unsafe_get flags k in
            (* a not-taken branch leaves PC untouched, so pre-set the
               fall-through for the successor comparison below; non-branch
               micro-ops never read or write PC and the write is elided *)
            if fl land sb_flag_cf <> 0 then t.pc <- mpc + 4;
            exec t mpc (Array.unsafe_get insns k);
            cyc := !cyc + (fl land sb_cost_mask);
            incr i;
            if fl land sb_flag_cf <> 0 then begin
              if t.stopped then begin
                fin := Some Stopped;
                exit_block := true
              end
              else if t.pc <> Array.unsafe_get succs k then
                exit_block := true  (* off the predicted path, PC exact *)
            end
            else begin
              (if watched then
                 match t.pending_hit with
                 | Some h ->
                   t.pc <- Array.unsafe_get succs k;
                   fin := Some (Hit_dbp h);
                   exit_block := true
                 | None -> ());
              if
                (not !exit_block)
                && fl land sb_flag_st <> 0
                && not
                     (Memory.page_generation b.b_pg1 = b.b_wg1
                     && Memory.page_generation b.b_pg2 = b.b_wg2)
              then begin
                t.pc <- Array.unsafe_get succs k;
                exit_block := true  (* store into the block itself *)
              end
            end
          done
        with Cpu_fault e ->
          (* the faulting micro-op does not retire; the completed prefix is
             charged below, then the fault is delivered exactly as [step]
             would deliver it *)
          exit_block := true;
          fin := Some (deliver_fault t (Array.unsafe_get pcs !i) e));
        if (not !exit_block) && !i > 0 then
          (* natural end: the elided per-op PC writes collapse into one
             store of the last micro-op's successor *)
          t.pc <- Array.unsafe_get succs (!i - 1);
        (* batched accounting for the retired prefix *)
        t.counters.Counters.cycles <- t.counters.Counters.cycles + !cyc;
        t.counters.Counters.instructions <- t.counters.Counters.instructions + !i;
        t.sb_insns <- t.sb_insns + !i;
        (match !fin with
        | Some (Hit_dbp _) | Some Stopped ->
          (* the event-carrying micro-op retired (counted above) but is
             reported as the event, not as a clean step *)
          retired := !retired + !i - 1;
          t.sb_fallbacks <- t.sb_fallbacks + 1
        | Some _ ->
          retired := !retired + !i;
          t.sb_fallbacks <- t.sb_fallbacks + 1
        | None -> retired := !retired + !i)
      end
    end
  done;
  (!retired, match !fin with None -> Retired | Some r -> r)

(* Pre-warm the decode and superblock caches from the kernel image's function
   ranges, so the first trial does not pay the cold-miss tail on paths the
   boot never executed. Touches only caches and diagnostics — architectural
   state, counters and snapshots are unaffected. *)
let prewarm t funcs =
  if t.dc_enabled then begin
    t.warming <- true;
    List.iter
      (fun (addr, size) ->
        let fin = addr + size in
        (* decode pass: warm every aligned word, collecting block entry
           points (branch targets and fall-throughs of block enders) *)
        let entries = ref [ addr ] in
        let p = ref addr in
        while !p < fin do
          t.dc_streak <- 0;
          (match decode_at t !p with
          | insn ->
            (match insn with
            | B (li, aa, _) -> entries := (if aa then li else Word.add !p li) :: !entries
            | Bc (_, _, bd, aa, _) ->
              entries := (if aa then bd else Word.add !p bd) :: !entries
            | _ -> ());
            if sb_ends_block insn || is_sb_terminator insn then
              entries := (!p + 4) :: !entries
          | exception Cpu_fault _ -> ()
          | exception Decode.Undefined_opcode -> ());
          p := !p + 4
        done;
        if t.sb_enabled then
          List.iter
            (fun e ->
              if e >= addr && e < fin && e land 3 = 0 then begin
                let b = Array.unsafe_get t.sbcache ((e lsr 2) land sbcache_mask) in
                let valid =
                  b.b_pc = e
                  && Memory.page_generation b.b_pg1 = b.b_wg1
                  && Memory.page_generation b.b_pg2 = b.b_wg2
                in
                t.dc_streak <- 0;
                if (not valid) && sb_build t b e then begin
                  t.sb_blocks <- t.sb_blocks + 1;
                  t.prewarmed <- t.prewarmed + 1
                end
              end)
            !entries)
      funcs;
    t.warming <- false
  end

let superblock_stats t = (t.sb_hits, t.sb_blocks, t.sb_insns, t.sb_fallbacks)
let decode_warm_stats t = (t.dc_warm_hits, t.prewarmed)

(* --- system registers (the G4 injection targets, §5.2) -------------------- *)

type sysreg = {
  sr_name : string;
  sr_bits : int;
  sr_get : t -> int;
  sr_set : t -> int -> unit;
}

let spr_sysreg (name, spr) =
  {
    sr_name = name;
    sr_bits = 32;
    sr_get = (fun t -> t.sprs.(spr));
    sr_set =
      (fun t v ->
        let old_v = t.sprs.(spr) in
        t.sprs.(spr) <- Word.mask v;
        if spr = spr_sdr1 then t.sdr1_poisoned <- v <> sdr1_reset
        else if spr = spr_hid0 then
          t.btic_poisoned <- v land hid0_btic <> hid0_reset land hid0_btic
        else if is_live_bat spr && bat_field_change old_v v then t.bat_poisoned <- true);
  }

let segment_sysreg i =
  {
    sr_name = Printf.sprintf "SR%d" i;
    sr_bits = 32;
    sr_get = (fun t -> t.sr.(i));
    sr_set =
      (fun t v ->
        t.sr.(i) <- Word.mask v;
        (* Only the kernel quadrant (0xC0000000 and up: SR12-SR15) is live
           while the kernel runs; corrupting it breaks translation. *)
        if i >= 12 then t.sr_poisoned.(i) <- true);
  }

let msr_sysreg =
  {
    sr_name = "MSR";
    sr_bits = 32;
    sr_get = (fun t -> t.msr);
    sr_set = (fun t v -> apply_msr t v);
  }

let system_registers =
  Array.of_list
    ((msr_sysreg :: List.map spr_sysreg supervisor_sprs)
    @ List.map segment_sysreg [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ])

(* --- snapshot/restore: the executor's "logical reboot" primitive ------- *)

type snapshot = {
  s_gpr : int array;
  s_pc : int;
  s_lr : int;
  s_ctr : int;
  s_cr : int;
  s_xer : int;
  s_msr : int;
  s_sprs : int array;
  s_sr : int array;
  s_sr_poisoned : bool array;
  s_dr : Debug_regs.snapshot;
  s_cycles : int;
  s_instructions : int;
  s_translation_broken : bool;
  s_bat_poisoned : bool;
  s_sdr1_poisoned : bool;
  s_btic_poisoned : bool;
  s_last_indirect_target : int;
  s_pending_hit : Debug_regs.data_hit option;
  s_stopped : bool;
  s_last_store_addr : int;
}

let snapshot t =
  {
    s_gpr = Array.copy t.gpr;
    s_pc = t.pc;
    s_lr = t.lr;
    s_ctr = t.ctr;
    s_cr = t.cr;
    s_xer = t.xer;
    s_msr = t.msr;
    s_sprs = Array.copy t.sprs;
    s_sr = Array.copy t.sr;
    s_sr_poisoned = Array.copy t.sr_poisoned;
    s_dr = Debug_regs.snapshot t.dr;
    s_cycles = t.counters.Counters.cycles;
    s_instructions = t.counters.Counters.instructions;
    s_translation_broken = t.translation_broken;
    s_bat_poisoned = t.bat_poisoned;
    s_sdr1_poisoned = t.sdr1_poisoned;
    s_btic_poisoned = t.btic_poisoned;
    s_last_indirect_target = t.last_indirect_target;
    s_pending_hit = t.pending_hit;
    s_stopped = t.stopped;
    s_last_store_addr = t.last_store_addr;
  }

let restore t s =
  Array.blit s.s_gpr 0 t.gpr 0 (Array.length t.gpr);
  t.pc <- s.s_pc;
  t.lr <- s.s_lr;
  t.ctr <- s.s_ctr;
  t.cr <- s.s_cr;
  t.xer <- s.s_xer;
  t.msr <- s.s_msr;
  Array.blit s.s_sprs 0 t.sprs 0 (Array.length t.sprs);
  Array.blit s.s_sr 0 t.sr 0 (Array.length t.sr);
  Array.blit s.s_sr_poisoned 0 t.sr_poisoned 0 (Array.length t.sr_poisoned);
  Debug_regs.restore t.dr s.s_dr;
  t.counters.Counters.cycles <- s.s_cycles;
  t.counters.Counters.instructions <- s.s_instructions;
  t.translation_broken <- s.s_translation_broken;
  t.bat_poisoned <- s.s_bat_poisoned;
  t.sdr1_poisoned <- s.s_sdr1_poisoned;
  t.btic_poisoned <- s.s_btic_poisoned;
  t.last_indirect_target <- s.s_last_indirect_target;
  t.pending_hit <- s.s_pending_hit;
  t.stopped <- s.s_stopped;
  t.last_store_addr <- s.s_last_store_addr
