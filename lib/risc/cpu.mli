(** The G4-like CPU: state, interpreter and supervisor-register model.

    Mirrors {!Ferrite_cisc.Cpu} for the PowerPC side: 32 GPRs, LR/CTR/CR/XER,
    MSR, and a 99-entry supervisor SPR file matching the paper's G4 campaign
    (§5.2), of which only ~15 registers can actually crash the kernel:
    MSR (IR/DR translation bits → machine check), SRR0/SRR1 (used by RFI),
    SPRG2 = SPR274 (kernel stack switch), SDR1 and the BAT0/segment registers
    (translation), and HID0 = SPR1008 (branch-target instruction cache). *)

type dentry
(** A decode-cache slot (see {!decode_cache_stats}); validated against the
    backing page's generation counter so stores, pokes and injected bit flips
    evict. *)

type sblock
(** A superblock: a straight-line instruction run flattened into parallel
    micro-op arrays and executed by {!run} with no per-step dispatch.
    Validated by the same page-generation scheme as the decode cache. *)

type t = {
  mem : Ferrite_machine.Memory.t;
  gpr : int array;  (** 32 general-purpose registers; r1 = stack pointer *)
  mutable pc : int;
  mutable lr : int;
  mutable ctr : int;
  mutable cr : int;
  mutable xer : int;
  mutable msr : int;
  sprs : int array;  (** indexed by SPR number *)
  sr : int array;  (** 16 segment registers *)
  sr_poisoned : bool array;
  dr : Ferrite_machine.Debug_regs.t;
  counters : Ferrite_machine.Counters.t;
  stop_addr : int;
  mutable translation_broken : bool;
  mutable bat_poisoned : bool;
  mutable sdr1_poisoned : bool;
  mutable btic_poisoned : bool;
  mutable last_indirect_target : int;
  mutable pending_hit : Ferrite_machine.Debug_regs.data_hit option;
  mutable stopped : bool;
  mutable last_store_addr : int;
  dcache : dentry array;  (** PC-keyed decode cache *)
  dc_enabled : bool;
      (** captured from [Memory.fast_paths] at {!create}; [false] forces the
          uncached fetch+decode path (differential testing) *)
  mutable dc_hits : int;
  mutable dc_misses : int;
  mutable dc_streak : int;
      (** consecutive decode-cache misses; long streaks bypass insertion *)
  mutable last_cost : int;
      (** cycle cost of the instruction the last decode returned *)
  sbcache : sblock array;  (** PC-keyed superblock cache *)
  mutable sb_enabled : bool;
      (** captured from [Memory.superblocks] at {!create}; [false] makes
          {!run} take the precise per-step path for every instruction *)
  mutable sb_hits : int;
  mutable sb_blocks : int;
  mutable sb_insns : int;
  mutable sb_fallbacks : int;
  mutable dc_warm_hits : int;
  mutable prewarmed : int;
  mutable warming : bool;
}

val decode_cache_stats : t -> int * int
(** [(hits, misses)] of the decode cache — monotonic diagnostics, excluded
    from {!snapshot}/{!restore}. *)

(** MSR bit masks (standard PowerPC encodings). *)

val msr_ee : int
val msr_pr : int
val msr_me : int
val msr_ir : int
val msr_dr : int

(** Well-known SPR numbers used by the harness and the kernel stubs. *)

val spr_srr0 : int
val spr_srr1 : int
val spr_sprg0 : int
val spr_sprg2 : int
val spr_hid0 : int
val spr_sdr1 : int

val create : mem:Ferrite_machine.Memory.t -> stop_addr:int -> t

val cr_field : t -> int -> int
(** [cr_field t n] reads 4-bit condition field [n] (0 = CR0). *)

type step_result =
  | Retired
  | Halted  (** the idle loop's wait instruction with EE set *)
  | Hit_ibp
  | Hit_dbp of Ferrite_machine.Debug_regs.data_hit
  | Stopped  (** control returned to the harness (BLR/RFI to the stop address) *)
  | Faulted of Exn.t

val step : ?skip_ibp:bool -> t -> step_result

val run : t -> max_steps:int -> int * step_result
(** [run t ~max_steps] executes up to [max_steps] instructions, using cached
    superblocks (built on demand) for straight-line code and falling back to
    the precise {!step} whenever translated execution could not reproduce its
    observable semantics: armed execute breakpoints, poisoned address
    translation, misaligned pc, or a terminator instruction ([sc]/[rfi]/
    [mtspr]/[mtmsr]). Returns [(n, r)] where [n] is the number of cleanly
    retired instructions and [r] the first event ([Retired] when the budget
    ran out). For [Hit_dbp]/[Stopped] the event-carrying instruction has
    retired (counters include it) but is excluded from [n]; for [Faulted]
    the exception has been delivered exactly as {!step} would. Observable
    behaviour is bit-identical to calling {!step} [in a loop]; only the
    diagnostic cache counters differ. *)

val prewarm : t -> (int * int) list -> unit
(** [prewarm t funcs] pre-decodes the given [(addr, size)] code ranges into
    the decode cache and builds superblocks at likely entry points (function
    starts, branch targets, fall-throughs of block enders), so a campaign's
    first trials do not pay the cold-miss tail. Touches only caches and
    diagnostic counters; architectural state is unaffected. No-op when the
    decode cache is disabled. *)

val superblock_stats : t -> int * int * int * int
(** [(hits, blocks_built, insns_retired_in_blocks, fallbacks)] — monotonic
    diagnostics, excluded from {!snapshot}/{!restore}. *)

val decode_warm_stats : t -> int * int
(** [(warm_hits, prewarmed_entries)] of the decode/superblock pre-warm. *)

type sysreg = {
  sr_name : string;
  sr_bits : int;
  sr_get : t -> int;
  sr_set : t -> int -> unit;
}

val system_registers : sysreg array
(** The 99 supervisor-model injection targets of the G4 campaign. *)

val exception_dispatch_cycles : int

type snapshot
(** Immutable copy of all architectural and harness-visible CPU state
    (registers, SPRs, counters, armed breakpoints, poison flags). Memory is
    snapshotted separately by {!Ferrite_machine.Memory.snapshot}. *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** [restore t s] rolls every mutable field back to the captured values; used
    with a post-boot snapshot it is a cheap logical reboot. *)
