let bounds = [| 3_000; 10_000; 100_000; 1_000_000; 10_000_000; 100_000_000; 1_000_000_000 |]

let bucket_labels = [ "<3k"; "3k-10k"; "10k-100k"; "100k-1M"; "1M-10M"; "10M-100M"; "100M-1G"; ">1G" ]

let bucket_count = Array.length bounds + 1

type t = { counts : int array; mutable total : int }

let create () = { counts = Array.make bucket_count 0; total = 0 }

let bucket_of latency =
  let rec go i = if i = Array.length bounds then i else if latency < bounds.(i) then i else go (i + 1) in
  go 0

let add t latency =
  let b = bucket_of latency in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1

let of_list l =
  let t = create () in
  List.iter (add t) l;
  t

let counts t = Array.copy t.counts

let total t = t.total

let fractions t =
  if t.total = 0 then Array.make bucket_count 0.0
  else Array.map (fun c -> float_of_int c /. float_of_int t.total) t.counts

(* Whole buckets below the threshold count fully; the bucket containing the
   threshold contributes the linear share of its width below the threshold.
   The histogram has no sub-bucket information, so the interpolation assumes
   samples spread uniformly inside a bucket — but it no longer silently
   *drops* the containing bucket: the old code truncated to bucket
   granularity, reporting 1/3 for [1k;4k;6k] below 5,000 where the
   interpolated answer is ~0.52. At exact bucket bounds the share term is
   zero, so those calls are unchanged. Inside the open-ended last bucket
   (>1G) there is no width to interpolate over; the fraction snaps down to
   the closed buckets' sum. *)
let fraction_below t ~cycles =
  if t.total = 0 then 0.0
  else begin
    let limit = bucket_of cycles in
    let below = ref 0.0 in
    for i = 0 to limit - 1 do
      below := !below +. float_of_int t.counts.(i)
    done;
    if limit < Array.length bounds then begin
      let lo = if limit = 0 then 0 else bounds.(limit - 1) in
      let hi = bounds.(limit) in
      let share = float_of_int (cycles - lo) /. float_of_int (hi - lo) in
      below := !below +. (share *. float_of_int t.counts.(limit))
    end;
    !below /. float_of_int t.total
  end

let merge a b =
  let t = create () in
  Array.iteri (fun i c -> t.counts.(i) <- c + b.counts.(i)) a.counts;
  t.total <- a.total + b.total;
  t
