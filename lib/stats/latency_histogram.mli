(** Cycles-to-crash histograms over the paper's Figure 16 buckets:
    <3k, 3k–10k, 10k–100k, 100k–1M, 1M–10M, 10M–100M, 100M–1G, >1G. *)

type t

val bucket_labels : string list

val bucket_count : int

val create : unit -> t

val add : t -> int -> unit
(** Record one latency (in cycles). *)

val of_list : int list -> t

val counts : t -> int array

val total : t -> int

val fractions : t -> float array
(** Per-bucket fraction of the total (zeros when empty). *)

val bucket_of : int -> int
(** Index of the bucket a latency falls in. *)

val fraction_below : t -> cycles:int -> float
(** Fraction of samples below [cycles]: whole buckets under the threshold
    count fully, and the bucket containing it contributes linearly (uniform
    spread assumed) — at exact bucket bounds this equals the plain
    whole-bucket sum. Inside the open-ended [>1G] bucket the value snaps down
    to the closed buckets' sum (no width to interpolate over). Used for
    "80% of crashes within 3,000 cycles"-style checks. *)

val merge : t -> t -> t
