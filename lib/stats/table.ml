type align = Left | Right

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else match align with Left -> s ^ String.make n ' ' | Right -> String.make n ' ' ^ s

let render ?aligns ~header rows =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then List.filteri (fun i _ -> i < ncols) row
    else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> a
    | _ -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i))) (String.length h) rows)
      header
  in
  let hline =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell -> " " ^ pad (List.nth aligns i) (List.nth widths i) cell ^ " ")
        row
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (hline ^ "\n");
  Buffer.add_string buf (render_row header ^ "\n");
  Buffer.add_string buf (hline ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) rows;
  Buffer.add_string buf hline;
  Buffer.contents buf

(* Grouped rendering: the same boxed table, with a full-width label row
   introducing each group of rows (the per-fault-model breakouts). *)
let render_grouped ?aligns ~header groups =
  let rows = List.concat_map snd groups in
  (* Widen the table when a group label would overflow its full-width row:
     pad the first header cell past the widest first-column cell so the
     column grows by exactly the deficit. *)
  let label_need =
    List.fold_left (fun w (name, _) -> max w (String.length name + 1)) 0 groups
  in
  let inner_width rendered =
    (match String.index_opt rendered '\n' with
    | Some i -> i
    | None -> String.length rendered)
    - 2
  in
  let base = render ?aligns ~header rows in
  let base =
    let deficit = label_need - inner_width base in
    if deficit <= 0 then base
    else
      match header with
      | [] -> base
      | h0 :: rest ->
        let col0 =
          List.fold_left
            (fun w row -> match row with c :: _ -> max w (String.length c) | [] -> w)
            (String.length h0) rows
        in
        render ?aligns ~header:(pad Left (col0 + deficit) h0 :: rest) rows
  in
  match String.split_on_char '\n' base with
  | hline :: hrow :: hline2 :: body ->
    let width = String.length hline - 2 in
    let label_row name =
      let text = " " ^ name in
      let text =
        if String.length text > width then
          (* unreachable after widening, but never chop silently *)
          if width > 3 then String.sub text 0 (width - 3) ^ "..."
          else String.sub text 0 width
        else text ^ String.make (width - String.length text) ' '
      in
      "|" ^ text ^ "|"
    in
    let buf = Buffer.create 512 in
    Buffer.add_string buf (hline ^ "\n" ^ hrow ^ "\n" ^ hline2 ^ "\n");
    let body = Array.of_list body in
    let i = ref 0 in
    List.iter
      (fun (name, grows) ->
        Buffer.add_string buf (label_row name ^ "\n");
        List.iter
          (fun _ ->
            Buffer.add_string buf (body.(!i) ^ "\n");
            incr i)
          grows;
        Buffer.add_string buf (hline ^ "\n"))
      groups;
    let out = Buffer.contents buf in
    String.sub out 0 (String.length out - 1)
  | _ -> base

let pct n d = if d = 0 then "-" else Printf.sprintf "%.1f%%" (100.0 *. float_of_int n /. float_of_int d)

let count_pct n d =
  if d = 0 then Printf.sprintf "%d" n
  else Printf.sprintf "%d (%.1f%%)" n (100.0 *. float_of_int n /. float_of_int d)
