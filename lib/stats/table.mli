(** Plain-text table rendering for the experiment reports. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] produces a boxed ASCII table. Column count is taken
    from the header; short rows are padded. Default alignment: first column
    left, the rest right. *)

val render_grouped :
  ?aligns:align list -> header:string list -> (string * string list list) list -> string
(** [render_grouped ~header groups] renders one boxed table where each
    [(label, rows)] group is introduced by a full-width label row and closed
    with a rule — the shape of the per-fault-model Table 5/6 breakouts.
    Column widths are computed over all groups, so the groups align. *)

val pct : int -> int -> string
(** [pct n d] formats [n/d] as ["12.3%"] (["-"] when [d = 0]). *)

val count_pct : int -> int -> string
(** ["123 (12.3%)"]. *)
