module Iofault = Ferrite_iofault.Iofault

(* Columnar on-disk result store.

   File layout (all integers little-endian or LEB128 varints):

     header := magic "FERRITEC" (8) | version (1)
     block  := payload_len (4, LE) | crc32(payload) (4, LE) | payload

   Each block is self-contained: its payload carries a row count followed by
   one column at a time, in a fixed order, with per-block string dictionaries
   — so blocks written by different sessions (append) decode without any
   shared state, and a torn tail loses at most the final partial block.

     payload := varint nrows
              | ints    index              (plain varints)
              | dict    arch
              | dict    kind
              | dict    model
              | dict    outcome
              | ints    activated          (0/1)
              | zigzags activation_cycle   (-1 encodes None)
              | optdict cause
              | zigzags latency            (-1 encodes None)
              | zigzags pc                 (-1 encodes None)
              | optdict function
              | optdict triage

     dict    := varint nstrings | (varint len | bytes)*  | varint code per row
     optdict := same, but code 0 is None and code k+1 is string k

   The framing deliberately mirrors [Journal]: a reader walks CRC-checked
   frames and stops at the first bad one, so a crash mid-append degrades to a
   shorter, still-valid store. Unlike the journal, payloads are hand-encoded
   (no [Marshal]): the format is stable across compiler versions and safe to
   mmap-style scan without trusting the producer. *)

type row = {
  r_index : int;
  r_arch : string;
  r_kind : string;
  r_model : string;
  r_outcome : string;
  r_activated : bool;
  r_activation_cycle : int option;
  r_cause : string option;
  r_latency : int option;
  r_pc : int option;
  r_function : string option;
  r_triage : string option;
}

let magic = "FERRITEC"
let version = '\001'
let header_size = String.length magic + 1

exception Not_a_store of string

(* ---------- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ---------- little-endian u32 / varint / zigzag ---------- *)

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let get_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

(* unsigned LEB128 *)
let put_varint buf v =
  if v < 0 then invalid_arg "Store.put_varint: negative";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7F)));
      go (v lsr 7)
    end
  in
  go v

exception Truncated_payload
(* internal: payload shorter than its encoding claims — treated as torn *)

let get_varint s pos =
  let n = String.length s in
  let rec go acc shift p =
    if p >= n then raise Truncated_payload;
    let b = Char.code s.[p] in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b < 0x80 then (acc, p + 1) else go acc (shift + 7) (p + 1)
  in
  go 0 0 pos

(* zigzag maps small negatives to small codes: -1 (the None sentinel) is 1 *)
let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag v = (v lsr 1) lxor (-(v land 1))

(* ---------- column encoders ---------- *)

let put_ints buf rows f =
  List.iter (fun r -> put_varint buf (f r)) rows

let put_zigzags buf rows f =
  List.iter (fun r -> put_varint buf (zigzag (f r))) rows

(* per-block dictionary: first-appearance order, so the encoding (and hence
   the file bytes) depends only on the row stream, never on hashing *)
let put_dict buf rows f =
  let order = ref [] and tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let s = f r in
      if not (Hashtbl.mem tbl s) then begin
        Hashtbl.add tbl s (Hashtbl.length tbl);
        order := s :: !order
      end)
    rows;
  let strings = List.rev !order in
  put_varint buf (List.length strings);
  List.iter
    (fun s ->
      put_varint buf (String.length s);
      Buffer.add_string buf s)
    strings;
  List.iter (fun r -> put_varint buf (Hashtbl.find tbl (f r))) rows

let put_optdict buf rows f =
  put_dict buf rows (fun r -> match f r with None -> "" | Some s -> "\x01" ^ s)

let encode_block rows =
  let buf = Buffer.create 4096 in
  put_varint buf (List.length rows);
  put_ints buf rows (fun r -> r.r_index);
  put_dict buf rows (fun r -> r.r_arch);
  put_dict buf rows (fun r -> r.r_kind);
  put_dict buf rows (fun r -> r.r_model);
  put_dict buf rows (fun r -> r.r_outcome);
  put_ints buf rows (fun r -> if r.r_activated then 1 else 0);
  put_zigzags buf rows (fun r -> Option.value ~default:(-1) r.r_activation_cycle);
  put_optdict buf rows (fun r -> r.r_cause);
  put_zigzags buf rows (fun r -> Option.value ~default:(-1) r.r_latency);
  put_zigzags buf rows (fun r -> Option.value ~default:(-1) r.r_pc);
  put_optdict buf rows (fun r -> r.r_function);
  put_optdict buf rows (fun r -> r.r_triage);
  Buffer.contents buf

(* ---------- column decoders ---------- *)

let get_ints s pos n =
  let arr = Array.make n 0 in
  let pos = ref pos in
  for i = 0 to n - 1 do
    let v, p = get_varint s !pos in
    arr.(i) <- v;
    pos := p
  done;
  (arr, !pos)

let get_zigzags s pos n =
  let arr, pos = get_ints s pos n in
  (Array.map unzigzag arr, pos)

let get_dict s pos n =
  let ndict, pos = get_varint s pos in
  let strings = Array.make ndict "" in
  let pos = ref pos in
  for i = 0 to ndict - 1 do
    let len, p = get_varint s !pos in
    if p + len > String.length s then raise Truncated_payload;
    strings.(i) <- String.sub s p len;
    pos := p + len
  done;
  let codes, pos' = get_ints s !pos n in
  let arr =
    Array.map
      (fun c -> if c < ndict then strings.(c) else raise Truncated_payload)
      codes
  in
  (arr, pos')

let get_optdict s pos n =
  let arr, pos = get_dict s pos n in
  ( Array.map
      (fun v ->
        if v = "" then None else Some (String.sub v 1 (String.length v - 1)))
      arr,
    pos )

let decode_block payload =
  let nrows, pos = get_varint payload 0 in
  if nrows < 0 then raise Truncated_payload;
  let index, pos = get_ints payload pos nrows in
  let arch, pos = get_dict payload pos nrows in
  let kind, pos = get_dict payload pos nrows in
  let model, pos = get_dict payload pos nrows in
  let outcome, pos = get_dict payload pos nrows in
  let activated, pos = get_ints payload pos nrows in
  let cycle, pos = get_zigzags payload pos nrows in
  let cause, pos = get_optdict payload pos nrows in
  let latency, pos = get_zigzags payload pos nrows in
  let pc, pos = get_zigzags payload pos nrows in
  let func, pos = get_optdict payload pos nrows in
  let triage, _pos = get_optdict payload pos nrows in
  let opt v = if v < 0 then None else Some v in
  Array.init nrows (fun i ->
      {
        r_index = index.(i);
        r_arch = arch.(i);
        r_kind = kind.(i);
        r_model = model.(i);
        r_outcome = outcome.(i);
        r_activated = activated.(i) <> 0;
        r_activation_cycle = opt cycle.(i);
        r_cause = cause.(i);
        r_latency = opt latency.(i);
        r_pc = opt pc.(i);
        r_function = func.(i);
        r_triage = triage.(i);
      })

(* ---------- reading ---------- *)

type scan = {
  sc_rows : int;
  sc_blocks : int;
  sc_bytes : int;  (* header + valid blocks *)
  sc_truncated_bytes : int;  (* torn tail dropped by the reader *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_header path data =
  if
    String.length data < header_size
    || String.sub data 0 (String.length magic) <> magic
  then raise (Not_a_store path);
  if data.[String.length magic] <> version then raise (Not_a_store path)

(* Walk CRC-framed blocks; the first bad frame (truncated, CRC mismatch, or
   undecodable payload) ends the walk — everything after it is torn tail. *)
let fold_blocks path f init =
  let data = read_file path in
  check_header path data;
  let len = String.length data in
  let rec go off acc blocks =
    if off + 8 > len then (acc, off, blocks)
    else
      let plen = get_u32 data off in
      let crc = get_u32 data (off + 4) in
      if plen < 0 || off + 8 + plen > len then (acc, off, blocks)
      else
        let payload = String.sub data (off + 8) plen in
        if crc32 payload <> crc then (acc, off, blocks)
        else
          match decode_block payload with
          | rows -> go (off + 8 + plen) (f acc rows) (blocks + 1)
          | exception Truncated_payload -> (acc, off, blocks)
  in
  let acc, valid_end, blocks = go header_size init 0 in
  ( acc,
    (* sc_rows is filled by [fold], which counts while decoding *)
    { sc_rows = 0; sc_blocks = blocks; sc_bytes = valid_end;
      sc_truncated_bytes = len - valid_end } )

let fold path f init =
  let (acc, rows), sc =
    fold_blocks path
      (fun (acc, n) block ->
        (Array.fold_left f acc block, n + Array.length block))
      (init, 0)
  in
  (acc, { sc with sc_rows = rows })

let iter path f = fst (fold path (fun () r -> f r) ())

let scan path = snd (fold path (fun () _ -> ()) ())

let read_all path =
  let rows, sc = fold path (fun acc r -> r :: acc) [] in
  (List.rev rows, sc)

(* ---------- writing ----------

   The writer is a raw [O_APPEND] file descriptor, and a block (frame header
   + payload) goes to the kernel as ONE [write] call: POSIX appends are
   atomic with respect to the file offset, so two processes appending blocks
   concurrently interleave at block granularity — whole frames, never spliced
   bytes. That is the store's concurrency contract: concurrent appenders are
   safe as long as a block is what they interleave; row order across
   processes is whatever the kernel serialized. (An out_channel would
   buffer-split large blocks across multiple writes and could tear them
   mid-frame.) *)

type writer = {
  io : Iofault.t;
  path : string;
  block_rows : int;
  mutable pending : row list;  (* newest first *)
  mutable npending : int;
  mutable written : int;  (* rows flushed to disk *)
  mutable degraded : bool;  (* ENOSPC/EIO: stop persisting, keep counting *)
  mutable dropped : int;  (* rows accepted after degradation *)
}

let default_block_rows = 4096

(* One [write] per call in the common case; [Iofault.write_fully] retries
   EINTR/EAGAIN/short writes with bounded backoff, and under a recoverable
   fault plan produces the same bytes a fault-free run would. Faults that
   split a block across writes forfeit the multi-process interleaving
   guarantee for that block only — fault plans are a single-process test
   mode, never armed on shared production stores. *)
let write_string io s = Iofault.write_fully io s

let degrade w op =
  if not w.degraded then begin
    w.degraded <- true;
    Iofault.note_salvage "store";
    Printf.eprintf
      "ferrite: store %s: %s; persisting stopped — rows are counted, the on-disk prefix \
       stays scannable\n\
       %!"
      w.path op
  end

let flush_block w =
  if w.npending > 0 then begin
    if not w.degraded then begin
      let payload = encode_block (List.rev w.pending) in
      let buf = Buffer.create (String.length payload + 8) in
      put_u32 buf (String.length payload);
      put_u32 buf (crc32 payload);
      Buffer.add_string buf payload;
      try
        write_string w.io (Buffer.contents buf);
        w.written <- w.written + w.npending
      with Unix.Unix_error ((Unix.ENOSPC as e), _, _) | Unix.Unix_error ((Unix.EIO as e), _, _)
      ->
        degrade w
          (if e = Unix.ENOSPC then "out of space (ENOSPC)" else "write failed (EIO)");
        w.dropped <- w.dropped + w.npending
    end
    else w.dropped <- w.dropped + w.npending;
    w.pending <- [];
    w.npending <- 0
  end

let append w row =
  w.pending <- row :: w.pending;
  w.npending <- w.npending + 1;
  if w.npending >= w.block_rows then flush_block w

let close w =
  flush_block w;
  Iofault.close w.io

let mk_writer ~block_rows ~path ~written fd =
  {
    io = Iofault.wrap_file ~label:"store" fd;
    path;
    block_rows;
    pending = [];
    npending = 0;
    written;
    degraded = false;
    dropped = 0;
  }

let create ?(block_rows = default_block_rows) path =
  if block_rows <= 0 then invalid_arg "Store.create: block_rows must be positive";
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_APPEND ] 0o644
  in
  let w = mk_writer ~block_rows ~path ~written:0 fd in
  (try write_string w.io (magic ^ String.make 1 version)
   with Unix.Unix_error ((Unix.ENOSPC | Unix.EIO), _, _) -> degrade w "header write failed");
  w

(* Append to an existing store: validate the header, then truncate any torn
   tail so the new blocks butt up against the last valid one. A missing file
   degrades to [create]. *)
let open_append ?(block_rows = default_block_rows) path =
  if block_rows <= 0 then invalid_arg "Store.open_append: block_rows must be positive";
  if not (Sys.file_exists path) then create ~block_rows path
  else begin
    let sc = scan path in
    if sc.sc_truncated_bytes > 0 then begin
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd sc.sc_bytes;
      Unix.close fd
    end;
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
    mk_writer ~block_rows ~path ~written:sc.sc_rows fd
  end

let rows_written w = w.written + w.npending + w.dropped
let degraded w = w.degraded
let rows_dropped w = w.dropped
