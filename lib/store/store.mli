(** Compact columnar on-disk result store.

    One file holds the per-trial results of one or more campaigns as columnar
    blocks: each block carries a row count and one column at a time (varint
    ints, zigzag option-ints, per-block string dictionaries), CRC-framed
    exactly like {!Ferrite_injection.Journal} frames. Blocks are
    self-contained, so a store can be appended to across sessions and a torn
    tail (crash mid-append) loses at most the final partial block.

    Rows are deliberately plain strings and ints — the store knows nothing of
    the injection layer's types, so the format is stable and the library has
    no dependencies. [Ferrite_injection.Result_store] maps
    {!Ferrite_injection.Outcome.record} + {!Ferrite_injection.Crash_dump.t}
    to rows and back. *)

type row = {
  r_index : int;  (** trial index within its campaign *)
  r_arch : string;  (** ["cisc"] or ["risc"] *)
  r_kind : string;  (** ["stack"], ["register"], ["data"], ["code"] *)
  r_model : string;  (** fault-model tag *)
  r_outcome : string;  (** {!Ferrite_injection.Outcome.outcome_label} *)
  r_activated : bool;
  r_activation_cycle : int option;
  r_cause : string option;  (** crash-cause label, for known crashes *)
  r_latency : int option;  (** cycles-to-crash, for known crashes *)
  r_pc : int option;  (** faulting PC from the crash dump *)
  r_function : string option;  (** symbolised faulting function *)
  r_triage : string option;  (** {!Ferrite_injection.Triage.tag} bucket *)
}

exception Not_a_store of string
(** Raised when a file lacks the store magic or has an unknown version. A
    torn tail is {e not} an error — readers stop at the first bad frame. *)

(** {2 Writing}

    {b Concurrency contract.} A writer flushes each columnar block as a
    single [write] to an [O_APPEND] descriptor, and POSIX appends are atomic
    with respect to the file offset — so multiple processes appending to one
    store concurrently interleave {e whole blocks}, never spliced bytes, and
    every row survives exactly once. Cross-process row order is whatever the
    kernel serialized (readers that care sort by [r_index]). What is {e not}
    supported is sharing one [writer] value between threads without a lock
    (its row buffer is unsynchronized), or calling {!create}/{!open_append}'s
    truncation concurrently with live appenders. *)

type writer

val create : ?block_rows:int -> string -> writer
(** [create path] starts a fresh store (an existing file is replaced).
    [block_rows] (default 4096) bounds rows per columnar block — smaller
    blocks flush more often (tests use tiny blocks to exercise framing). *)

val open_append : ?block_rows:int -> string -> writer
(** Append to an existing store: the header is validated
    ({!Not_a_store} on mismatch), any torn tail is truncated away, and new
    blocks continue after the last valid one. A missing file degrades to
    {!create}. *)

val append : writer -> row -> unit
(** Buffer one row; flushes a columnar block every [block_rows] rows. *)

val close : writer -> unit
(** Flush the final partial block and close the file. *)

val rows_written : writer -> int
(** Rows accepted so far (including rows already in the file when the writer
    was opened with {!open_append}, rows still buffered, and — in the
    degraded mode below — rows counted but not persisted). *)

val degraded : writer -> bool
(** The writer hit ENOSPC/EIO and stopped persisting. The campaign keeps
    running; the on-disk prefix stays a valid, scannable store. *)

val rows_dropped : writer -> int
(** Rows accepted after degradation (counted, not persisted). *)

(** {2 Reading} *)

type scan = {
  sc_rows : int;  (** decoded rows *)
  sc_blocks : int;  (** valid blocks *)
  sc_bytes : int;  (** header + valid blocks, i.e. the recoverable prefix *)
  sc_truncated_bytes : int;  (** torn tail ignored by the reader *)
}

val fold : string -> ('a -> row -> 'a) -> 'a -> 'a * scan
(** Stream every row of the store through [f] in file order (campaign order:
    writers emit rows in merged trial order). Stops at the first truncated or
    CRC-damaged frame; the scan reports what was read and what was dropped.
    Memory is bounded by one block, not the file. *)

val iter : string -> (row -> unit) -> unit
val scan : string -> scan
val read_all : string -> row list * scan
