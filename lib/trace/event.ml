(* Trace events: the per-injection evidence stream of Figs. 7-9/13-15.

   Every event is stamped with the machine's cycle and instruction counters
   plus the PC (and its symbol) at emission time, so a buffer replays as an
   annotated timeline. The payloads are plain ints and strings: the trace
   library sits below the injection engine and knows nothing about targets,
   outcomes or crash causes beyond their rendered labels. *)

type stamp = {
  s_cycles : int;
  s_instructions : int;
  s_pc : int;
  s_function : string option;
}

type bp_kind = Instruction | Data

type space = Code_space | Stack_space | Data_space

let space_label = function
  | Code_space -> "code"
  | Stack_space -> "stack"
  | Data_space -> "data"

type t =
  | Trial_begin of { trial : int; target : string }
  | Trial_end of { trial : int; outcome : string }
  | Arm_bp of { kind : bp_kind; addr : int }
  | Flip of { space : space; addr : int; bit : int }
  | Reg_flip of { reg : string; bit : int }
  | Reinject of { addr : int; bit : int }
  | Restore of { addr : int; bit : int }
  | Bp_hit of { addr : int; stray : bool }
  | Watch_hit of { addr : int; is_write : bool }
  | Activated of { via : string }
  | Exn_raised of { fault : string }
  | Handler_done of { fault : string; cycles : int }
  | Classified of { cause : string option; latency : int }
  | Collector_send of { delivered : bool }
  | Collector_retransmit of { retries : int }
  | Watchdog_expired of { steps : int }
  | Trial_retry of { trial : int; attempt : int; reason : string }
  | Trial_quarantined of { trial : int; attempts : int; reason : string }
  | Resume_skip of { trial : int }
  (* Fault-model events. New constructors are appended (never inserted):
     Marshal numbers non-constant constructors by declaration order, and v1
     journal payloads must keep decoding after the algebra grows. *)
  | Model_flip of { model : string; space : space; addr : int; bit : int }
  | Reassert of { model : string; addr : int; bit : int }
  | Structure_fault of { model : string; addr : int; partner : int }

(* Stable machine-readable tag, used by the JSONL exporter. *)
let tag = function
  | Trial_begin _ -> "trial-begin"
  | Trial_end _ -> "trial-end"
  | Arm_bp _ -> "arm-bp"
  | Flip _ -> "flip"
  | Reg_flip _ -> "reg-flip"
  | Reinject _ -> "reinject"
  | Restore _ -> "restore"
  | Bp_hit _ -> "bp-hit"
  | Watch_hit _ -> "watch-hit"
  | Activated _ -> "activated"
  | Exn_raised _ -> "exn-raised"
  | Handler_done _ -> "handler-done"
  | Classified _ -> "classified"
  | Collector_send _ -> "collector-send"
  | Collector_retransmit _ -> "collector-retransmit"
  | Watchdog_expired _ -> "watchdog-expired"
  | Trial_retry _ -> "trial-retry"
  | Trial_quarantined _ -> "trial-quarantined"
  | Resume_skip _ -> "resume-skip"
  | Model_flip _ -> "model-flip"
  | Reassert _ -> "reassert"
  | Structure_fault _ -> "structure-fault"

(* One-line human-readable description (no stamp; the printer prepends it). *)
let describe = function
  | Trial_begin { trial; target } -> Printf.sprintf "trial %d begin — target %s" trial target
  | Trial_end { trial; outcome } -> Printf.sprintf "trial %d end — outcome %s" trial outcome
  | Arm_bp { kind = Instruction; addr } ->
    Printf.sprintf "arm instruction breakpoint @ %08x" addr
  | Arm_bp { kind = Data; addr } -> Printf.sprintf "arm data watchpoint @ %08x" addr
  | Flip { space; addr; bit } ->
    Printf.sprintf "flip %s bit %d @ %08x" (space_label space) bit addr
  | Reg_flip { reg; bit } -> Printf.sprintf "flip register %s bit %d" reg bit
  | Reinject { addr; bit } ->
    Printf.sprintf "re-inject bit %d @ %08x (write overwrote the error)" bit addr
  | Restore { addr; bit } ->
    Printf.sprintf "restore bit %d @ %08x (error never activated)" bit addr
  | Bp_hit { addr; stray = false } -> Printf.sprintf "instruction breakpoint hit @ %08x" addr
  | Bp_hit { addr; stray = true } ->
    Printf.sprintf "stray instruction breakpoint @ %08x (stepped over)" addr
  | Watch_hit { addr; is_write } ->
    Printf.sprintf "data watchpoint hit @ %08x (%s)" addr (if is_write then "write" else "read")
  | Activated { via } -> Printf.sprintf "error activated (%s)" via
  | Exn_raised { fault } -> Printf.sprintf "exception raised: %s" fault
  | Handler_done { fault; cycles } ->
    Printf.sprintf "crash handler ran (%s, +%d cycles)" fault cycles
  | Classified { cause = Some c; latency } ->
    Printf.sprintf "classified as %S, cycles-to-crash %d" c latency
  | Classified { cause = None; latency } ->
    Printf.sprintf "no crash dump produced (latency %d)" latency
  | Collector_send { delivered = true } -> "crash dump delivered to collector"
  | Collector_send { delivered = false } -> "crash dump lost in transit"
  | Collector_retransmit { retries } ->
    Printf.sprintf "crash dump retransmitted %d time%s" retries (if retries = 1 then "" else "s")
  | Watchdog_expired { steps } -> Printf.sprintf "watchdog expired after %d steps" steps
  | Trial_retry { trial; attempt; reason } ->
    Printf.sprintf "trial %d attempt %d failed (%s) — retrying from a fresh boot" trial attempt
      reason
  | Trial_quarantined { trial; attempts; reason } ->
    Printf.sprintf "trial %d quarantined after %d attempt%s (%s)" trial attempts
      (if attempts = 1 then "" else "s")
      reason
  | Resume_skip { trial } -> Printf.sprintf "trial %d recovered from journal (resume skip)" trial
  | Model_flip { model; space; addr; bit } ->
    Printf.sprintf "%s fault: flip %s bit %d @ %08x" model (space_label space) bit addr
  | Reassert { model; addr; bit } ->
    Printf.sprintf "%s fault re-asserted: bit %d @ %08x" model bit addr
  | Structure_fault { model; addr; partner } ->
    Printf.sprintf "%s structure fault: %08x <-> %08x" model addr partner
