(** Trace events emitted by the injection pipeline.

    Each event is paired with a {!stamp} capturing the machine's performance
    counters and program counter at emission time — the raw material of the
    paper's per-injection evidence (Figs. 7-9 and 13-15 are exactly such
    timelines). Payloads are plain values so this library has no dependency
    on the machine, kernel or injection layers. *)

type stamp = {
  s_cycles : int;  (** simulated cycle counter at emission *)
  s_instructions : int;  (** retired-instruction counter at emission *)
  s_pc : int;  (** program counter at emission *)
  s_function : string option;  (** symbolised [s_pc], when inside a function *)
}

type bp_kind = Instruction | Data

type space = Code_space | Stack_space | Data_space

val space_label : space -> string

type t =
  | Trial_begin of { trial : int; target : string }
  | Trial_end of { trial : int; outcome : string }
  | Arm_bp of { kind : bp_kind; addr : int }  (** STEP 2: breakpoint armed *)
  | Flip of { space : space; addr : int; bit : int }  (** a memory bit flipped *)
  | Reg_flip of { reg : string; bit : int }  (** a register bit flipped *)
  | Reinject of { addr : int; bit : int }  (** §3.3 write-overwrite re-injection *)
  | Restore of { addr : int; bit : int }  (** STEP 3 undo of a never-activated error *)
  | Bp_hit of { addr : int; stray : bool }  (** instruction breakpoint fired *)
  | Watch_hit of { addr : int; is_write : bool }  (** data watchpoint fired *)
  | Activated of { via : string }  (** first evidence the error was consumed *)
  | Exn_raised of { fault : string }  (** hardware exception delivered *)
  | Handler_done of { fault : string; cycles : int }  (** crash handler cost charged *)
  | Classified of { cause : string option; latency : int }
      (** Table 3/4 verdict; [None] when no dump could be produced *)
  | Collector_send of { delivered : bool }  (** lossy UDP dump channel *)
  | Collector_retransmit of { retries : int }
      (** the dump needed [retries] retransmissions (loss or lost acks) *)
  | Watchdog_expired of { steps : int }  (** step-budget watchdog fired *)
  | Trial_retry of { trial : int; attempt : int; reason : string }
      (** supervisor: an attempt failed; the trial restarts from a fresh boot *)
  | Trial_quarantined of { trial : int; attempts : int; reason : string }
      (** supervisor: every attempt failed; the trial is quarantined as an
          infrastructure failure and excluded from Table 5/6 percentages *)
  | Resume_skip of { trial : int }
      (** supervisor: trial result recovered from the journal, not re-run *)
  | Model_flip of { model : string; space : space; addr : int; bit : int }
      (** a non-single-bit fault model corrupted a bit (one event per bit).
          Appended after the v1 constructors — journal compatibility requires
          new events to be appended, never inserted. *)
  | Reassert of { model : string; addr : int; bit : int }
      (** a persistent model (stuck-at, intermittent, multi-bit) re-asserted
          its corruption after the workload overwrote or rotated it *)
  | Structure_fault of { model : string; addr : int; partner : int }
      (** a structure fault (TLB entry) swapped two mapped pages *)

val tag : t -> string
(** Stable machine-readable tag (the JSONL ["event"] field). *)

val describe : t -> string
(** One-line human-readable description, without the stamp. *)
