(* JSONL export: one JSON object per event, one line per object.

   Schema (documented in README.md): every line carries the stamp fields
     trial, cycles, instructions, pc (hex string), fn (string or null),
     event (the Event.tag)
   plus event-specific payload fields. Addresses are zero-padded lowercase
   hex strings to match the printer and the kernel's own dumps. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""
let hex a = Printf.sprintf "\"%08x\"" a
let bool b = if b then "true" else "false"

let payload (ev : Event.t) =
  match ev with
  | Event.Trial_begin { target; _ } -> [ ("target", str target) ]
  | Event.Trial_end { outcome; _ } -> [ ("outcome", str outcome) ]
  | Event.Arm_bp { kind; addr } ->
    [
      ("kind", str (match kind with Event.Instruction -> "instruction" | Event.Data -> "data"));
      ("addr", hex addr);
    ]
  | Event.Flip { space; addr; bit } ->
    [ ("space", str (Event.space_label space)); ("addr", hex addr); ("bit", string_of_int bit) ]
  | Event.Reg_flip { reg; bit } -> [ ("reg", str reg); ("bit", string_of_int bit) ]
  | Event.Reinject { addr; bit } | Event.Restore { addr; bit } ->
    [ ("addr", hex addr); ("bit", string_of_int bit) ]
  | Event.Bp_hit { addr; stray } -> [ ("addr", hex addr); ("stray", bool stray) ]
  | Event.Watch_hit { addr; is_write } -> [ ("addr", hex addr); ("write", bool is_write) ]
  | Event.Activated { via } -> [ ("via", str via) ]
  | Event.Exn_raised { fault } -> [ ("fault", str fault) ]
  | Event.Handler_done { fault; cycles } ->
    [ ("fault", str fault); ("cycles", string_of_int cycles) ]
  | Event.Classified { cause; latency } ->
    [
      ("cause", match cause with Some c -> str c | None -> "null");
      ("latency", string_of_int latency);
    ]
  | Event.Collector_send { delivered } -> [ ("delivered", bool delivered) ]
  | Event.Collector_retransmit { retries } -> [ ("retries", string_of_int retries) ]
  | Event.Watchdog_expired { steps } -> [ ("steps", string_of_int steps) ]
  | Event.Trial_retry { attempt; reason; _ } ->
    [ ("attempt", string_of_int attempt); ("reason", str reason) ]
  | Event.Trial_quarantined { attempts; reason; _ } ->
    [ ("attempts", string_of_int attempts); ("reason", str reason) ]
  | Event.Resume_skip _ -> []
  | Event.Model_flip { model; space; addr; bit } ->
    [
      ("model", str model);
      ("space", str (Event.space_label space));
      ("addr", hex addr);
      ("bit", string_of_int bit);
    ]
  | Event.Reassert { model; addr; bit } ->
    [ ("model", str model); ("addr", hex addr); ("bit", string_of_int bit) ]
  | Event.Structure_fault { model; addr; partner } ->
    [ ("model", str model); ("addr", hex addr); ("partner", hex partner) ]

let event_line ~trial ((s : Event.stamp), ev) =
  let fields =
    [
      ("trial", string_of_int trial);
      ("cycles", string_of_int s.Event.s_cycles);
      ("instructions", string_of_int s.Event.s_instructions);
      ("pc", hex s.Event.s_pc);
      ("fn", match s.Event.s_function with Some f -> str f | None -> "null");
      ("event", str (Event.tag ev));
    ]
    @ payload ev
  in
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

let trial_lines (tr : Tracer.trial) =
  List.map (event_line ~trial:tr.Tracer.tr_index) tr.Tracer.tr_events

let write_trials oc trials =
  List.iter
    (fun tr ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (trial_lines tr))
    trials

(* Path-based variant routed through the seeded I/O fault layer: retriable
   faults are absorbed, ENOSPC/EIO degrade to counting (the file keeps its
   newline-terminated prefix, the campaign keeps running). *)
let write_trials_path path trials =
  let module Iofault = Ferrite_iofault.Iofault in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let io = Iofault.wrap_file ~label:"jsonl" fd in
  let degraded = ref false in
  let buf = Buffer.create 65536 in
  let flush_buf () =
    if (not !degraded) && Buffer.length buf > 0 then begin
      try Iofault.write_fully io (Buffer.contents buf)
      with Unix.Unix_error ((Unix.ENOSPC | Unix.EIO), _, _) ->
        degraded := true;
        Iofault.note_salvage "trace";
        Printf.eprintf
          "ferrite: trace %s: write failed; remaining lines dropped, the prefix on disk \
           is complete lines only\n\
           %!"
          path
    end;
    Buffer.clear buf
  in
  List.iter
    (fun tr ->
      List.iter
        (fun line ->
          Buffer.add_string buf line;
          Buffer.add_char buf '\n';
          if Buffer.length buf >= 65536 then flush_buf ())
        (trial_lines tr))
    trials;
  flush_buf ();
  Iofault.close io;
  not !degraded
