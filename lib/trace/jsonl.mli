(** JSONL export of trial traces: one JSON object per event, one per line.

    Every line carries the stamp fields — [trial], [cycles],
    [instructions], [pc] (zero-padded lowercase hex string), [fn] (string
    or [null]) and [event] (the {!Event.tag}) — plus the event-specific
    payload fields. The schema is documented in README.md. *)

val event_line : trial:int -> Event.stamp * Event.t -> string
(** One stamped event as one JSON object (no trailing newline). *)

val trial_lines : Tracer.trial -> string list
(** Every retained event of a trial, in order. *)

val write_trials : out_channel -> Tracer.trial list -> unit
(** Write every trial's lines, newline-terminated, in trial order. *)

val write_trials_path : string -> Tracer.trial list -> bool
(** Like {!write_trials} but opening [path] itself and routing the bytes
    through the seeded I/O fault layer ({!Ferrite_iofault.Iofault}):
    retriable faults are absorbed and the file is byte-identical to a
    fault-free run; ENOSPC/EIO degrade to dropping the remaining lines
    (the on-disk prefix is whole lines only). Returns [false] iff the
    writer degraded. *)
