(** JSONL export of trial traces: one JSON object per event, one per line.

    Every line carries the stamp fields — [trial], [cycles],
    [instructions], [pc] (zero-padded lowercase hex string), [fn] (string
    or [null]) and [event] (the {!Event.tag}) — plus the event-specific
    payload fields. The schema is documented in README.md. *)

val event_line : trial:int -> Event.stamp * Event.t -> string
(** One stamped event as one JSON object (no trailing newline). *)

val trial_lines : Tracer.trial -> string list
(** Every retained event of a trial, in order. *)

val write_trials : out_channel -> Tracer.trial list -> unit
(** Write every trial's lines, newline-terminated, in trial order. *)
