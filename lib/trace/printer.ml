(* Human-readable trace rendering: the Figs. 7/13/14 annotated timelines. *)

let render_stamp (s : Event.stamp) =
  Printf.sprintf "%10d %8d  %08x  %-18s" s.Event.s_cycles s.Event.s_instructions s.Event.s_pc
    (match s.Event.s_function with Some f -> f | None -> "-")

let render_line (stamp, ev) = render_stamp stamp ^ " " ^ Event.describe ev

let header = Printf.sprintf "%10s %8s  %-8s  %-18s %s" "cycles" "instr" "pc" "function" "event"

let render_events events =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf (render_line e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let render_trial (tr : Tracer.trial) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "trial %d: %s -> %s\n" tr.Tracer.tr_index tr.Tracer.tr_target
       tr.Tracer.tr_outcome);
  if tr.Tracer.tr_dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf "(%d earlier events dropped by the bounded ring)\n" tr.Tracer.tr_dropped);
  Buffer.add_string buf (render_events tr.Tracer.tr_events);
  Buffer.contents buf

let render_trials trials = String.concat "\n" (List.map render_trial trials)
