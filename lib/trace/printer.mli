(** Human-readable trace rendering — the annotated timelines of the paper's
    per-injection examples (Figs. 7, 13, 14). Output is deterministic: the
    same events render to the same bytes, which is what the golden-trace
    tests compare across executors. *)

val header : string
(** Column header for a timeline. *)

val render_line : Event.stamp * Event.t -> string
(** One stamped event as one line (no trailing newline). *)

val render_events : (Event.stamp * Event.t) list -> string
(** Header plus one line per event, newline-terminated. *)

val render_trial : Tracer.trial -> string
(** Trial banner (index, target, outcome), a dropped-events note when the
    ring overflowed, then the timeline. *)

val render_trials : Tracer.trial list -> string
(** Every trial, blank-line separated. *)
