(* Campaign-level telemetry: the counters that keep the engine honest.

   Telemetry is accumulated per trial by the tracer (independently of the
   bounded event ring, so it is exact even when events are dropped), merged
   across trials by component-wise sums — associative and commutative, so the
   merged value is identical for every executor — and surfaced in campaign
   summaries and the report. *)

type t = {
  tl_trials : int;
  tl_activations : int;
  tl_flips : int;  (* memory + register flips, including re-injections *)
  tl_reinjections : int;
  tl_stray_breakpoints : int;
  tl_watchdog_expiries : int;
  tl_exceptions : int;
  tl_dumps_sent : int;
  tl_dumps_lost : int;
  tl_retransmits : int;  (* dump retransmissions over the lossy channel *)
  tl_retries : int;  (* supervisor retry attempts recorded in trial traces *)
  tl_quarantines : int;  (* trials quarantined as infrastructure failures *)
  tl_boots : int;  (* per-worker boots + policy reboots; executor-dependent *)
  tl_events : int;  (* events recorded, including those dropped by the ring *)
  tl_dropped : int;
}

let zero =
  {
    tl_trials = 0;
    tl_activations = 0;
    tl_flips = 0;
    tl_reinjections = 0;
    tl_stray_breakpoints = 0;
    tl_watchdog_expiries = 0;
    tl_exceptions = 0;
    tl_dumps_sent = 0;
    tl_dumps_lost = 0;
    tl_retransmits = 0;
    tl_retries = 0;
    tl_quarantines = 0;
    tl_boots = 0;
    tl_events = 0;
    tl_dropped = 0;
  }

let merge a b =
  {
    tl_trials = a.tl_trials + b.tl_trials;
    tl_activations = a.tl_activations + b.tl_activations;
    tl_flips = a.tl_flips + b.tl_flips;
    tl_reinjections = a.tl_reinjections + b.tl_reinjections;
    tl_stray_breakpoints = a.tl_stray_breakpoints + b.tl_stray_breakpoints;
    tl_watchdog_expiries = a.tl_watchdog_expiries + b.tl_watchdog_expiries;
    tl_exceptions = a.tl_exceptions + b.tl_exceptions;
    tl_dumps_sent = a.tl_dumps_sent + b.tl_dumps_sent;
    tl_dumps_lost = a.tl_dumps_lost + b.tl_dumps_lost;
    tl_retransmits = a.tl_retransmits + b.tl_retransmits;
    tl_retries = a.tl_retries + b.tl_retries;
    tl_quarantines = a.tl_quarantines + b.tl_quarantines;
    tl_boots = a.tl_boots + b.tl_boots;
    tl_events = a.tl_events + b.tl_events;
    tl_dropped = a.tl_dropped + b.tl_dropped;
  }

let with_boots t boots = { t with tl_boots = boots }

let fields t =
  [
    ("trials", t.tl_trials);
    ("activations", t.tl_activations);
    ("flips", t.tl_flips);
    ("reinjections", t.tl_reinjections);
    ("stray_breakpoints", t.tl_stray_breakpoints);
    ("watchdog_expiries", t.tl_watchdog_expiries);
    ("exceptions", t.tl_exceptions);
    ("dumps_sent", t.tl_dumps_sent);
    ("dumps_lost", t.tl_dumps_lost);
    ("retransmits", t.tl_retransmits);
    ("retries", t.tl_retries);
    ("quarantines", t.tl_quarantines);
    ("boots", t.tl_boots);
    ("events", t.tl_events);
    ("events_dropped", t.tl_dropped);
  ]

let to_json t =
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %d" k v) (fields t))
  ^ "}"

let render t =
  String.concat "\n"
    (List.map (fun (k, v) -> Printf.sprintf "  %-18s %d" k v) (fields t))
