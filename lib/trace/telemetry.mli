(** Campaign telemetry counters.

    Accumulated by the {!Tracer} independently of its bounded event ring (so
    the counts are exact even when events are dropped), and merged across
    trials and workers by component-wise sums — associative and commutative
    with {!zero} as the unit, so the merged value is executor-independent.

    {b Telemetry invariants} (checked by tests, relied on by the report):
    - [tl_dumps_sent + tl_dumps_lost] equals the number of classified crashes
      that produced a dump;
    - [tl_activations <= tl_trials + tl_reinjections] — at most one
      activation per trial;
    - [tl_events] counts every recorded event, of which [tl_dropped] fell out
      of the bounded ring; [tl_events - tl_dropped] events are replayable;
    - all fields except [tl_boots] are identical under
      [Executor.Sequential] and [Executor.Parallel]. *)

type t = {
  tl_trials : int;
  tl_activations : int;
  tl_flips : int;  (** memory + register flips, including re-injections *)
  tl_reinjections : int;  (** §3.3 write-overwrite re-injections *)
  tl_stray_breakpoints : int;  (** breakpoint hits not at the armed target *)
  tl_watchdog_expiries : int;
  tl_exceptions : int;  (** hardware exceptions delivered to the crash path *)
  tl_dumps_sent : int;
  tl_dumps_lost : int;  (** dumps abandoned after every (re)transmission was lost *)
  tl_retransmits : int;  (** dump retransmissions over the lossy channel *)
  tl_retries : int;
      (** supervisor retry attempts recorded in trial traces (only quarantined
          trials carry their failed attempts; a retried-then-successful trial
          keeps its clean trace so records stay executor- and resume-invariant
          — the supervisor's own report tallies those) *)
  tl_quarantines : int;  (** trials quarantined as infrastructure failures *)
  tl_boots : int;  (** worker boots + policy reboots (executor-dependent) *)
  tl_events : int;
  tl_dropped : int;
}

val zero : t
val merge : t -> t -> t
val with_boots : t -> int -> t
(** [with_boots t n] sets [tl_boots] (filled in by the campaign from the
    executor's reboot tally, which is per-worker and so not a per-trial sum). *)

val fields : t -> (string * int) list
(** Label/value pairs in a fixed order (report tables, exporters). *)

val to_json : t -> string
(** One-line JSON object. *)

val render : t -> string
(** Multi-line human-readable block. *)
