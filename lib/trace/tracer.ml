(* Bounded ring-buffer event tracer.

   One tracer serves one trial; the ring keeps the most recent
   [trace_capacity] events (a flight recorder: a hang can emit millions of
   watchpoint hits, and the interesting suffix is the one that ends in the
   crash), while telemetry counters are exact regardless of drops. A
   capacity of 0 disables event retention entirely and keeps only the
   counters — cheap enough to leave on for every campaign trial. *)

type config = { trace_capacity : int }

let default_config = { trace_capacity = 4096 }
let telemetry_only = { trace_capacity = 0 }

let validated config =
  if config.trace_capacity < 0 then
    invalid_arg "Tracer.config: trace_capacity must be non-negative";
  config

type t = {
  capacity : int;
  ring : (Event.stamp * Event.t) option array;  (* None = slot never written *)
  mutable total : int;  (* events ever recorded; ring holds the last [capacity] *)
  mutable trials : int;
  mutable activations : int;
  mutable flips : int;
  mutable reinjections : int;
  mutable strays : int;
  mutable watchdogs : int;
  mutable exceptions : int;
  mutable dumps_sent : int;
  mutable dumps_lost : int;
  mutable retransmits : int;
  mutable retries : int;
  mutable quarantines : int;
}

let create config =
  let config = validated config in
  {
    capacity = config.trace_capacity;
    ring = Array.make (max 1 config.trace_capacity) None;
    total = 0;
    trials = 0;
    activations = 0;
    flips = 0;
    reinjections = 0;
    strays = 0;
    watchdogs = 0;
    exceptions = 0;
    dumps_sent = 0;
    dumps_lost = 0;
    retransmits = 0;
    retries = 0;
    quarantines = 0;
  }

let count t ev =
  match (ev : Event.t) with
  | Event.Trial_begin _ -> t.trials <- t.trials + 1
  | Event.Activated _ -> t.activations <- t.activations + 1
  | Event.Flip _ | Event.Reg_flip _ -> t.flips <- t.flips + 1
  | Event.Reinject _ ->
    t.flips <- t.flips + 1;
    t.reinjections <- t.reinjections + 1
  | Event.Bp_hit { stray = true; _ } -> t.strays <- t.strays + 1
  | Event.Watchdog_expired _ -> t.watchdogs <- t.watchdogs + 1
  | Event.Exn_raised _ -> t.exceptions <- t.exceptions + 1
  | Event.Collector_send { delivered = true } -> t.dumps_sent <- t.dumps_sent + 1
  | Event.Collector_send { delivered = false } -> t.dumps_lost <- t.dumps_lost + 1
  | Event.Collector_retransmit { retries } -> t.retransmits <- t.retransmits + retries
  | Event.Trial_retry _ -> t.retries <- t.retries + 1
  | Event.Trial_quarantined _ -> t.quarantines <- t.quarantines + 1
  | Event.Model_flip _ -> t.flips <- t.flips + 1
  | Event.Reassert _ ->
    t.flips <- t.flips + 1;
    t.reinjections <- t.reinjections + 1
  | Event.Structure_fault _ -> t.flips <- t.flips + 1
  | Event.Resume_skip _ -> ()
  | Event.Trial_end _ | Event.Arm_bp _ | Event.Restore _
  | Event.Bp_hit { stray = false; _ } | Event.Watch_hit _ | Event.Handler_done _
  | Event.Classified _ -> ()

let record t stamp ev =
  count t ev;
  if t.capacity > 0 then t.ring.(t.total mod t.capacity) <- Some (stamp, ev);
  t.total <- t.total + 1

let recorded t = t.total

let dropped t = if t.capacity = 0 then t.total else max 0 (t.total - t.capacity)

let events t =
  if t.capacity = 0 || t.total = 0 then []
  else begin
    let n = min t.total t.capacity in
    let first = t.total - n in
    List.init n (fun i ->
        match t.ring.((first + i) mod t.capacity) with
        | Some e -> e
        | None -> assert false (* slots below [total] are always written *))
  end

let telemetry t =
  {
    Telemetry.tl_trials = t.trials;
    tl_activations = t.activations;
    tl_flips = t.flips;
    tl_reinjections = t.reinjections;
    tl_stray_breakpoints = t.strays;
    tl_watchdog_expiries = t.watchdogs;
    tl_exceptions = t.exceptions;
    tl_dumps_sent = t.dumps_sent;
    tl_dumps_lost = t.dumps_lost;
    tl_retransmits = t.retransmits;
    tl_retries = t.retries;
    tl_quarantines = t.quarantines;
    tl_boots = 0;
    tl_events = t.total;
    tl_dropped = dropped t;
  }

(* The per-trial value that survives the executor's merge. *)
type trial = {
  tr_index : int;
  tr_target : string;
  tr_outcome : string;
  tr_events : (Event.stamp * Event.t) list;
  tr_dropped : int;
  tr_telemetry : Telemetry.t;
}

let trial_of t ~index ~target ~outcome =
  {
    tr_index = index;
    tr_target = target;
    tr_outcome = outcome;
    tr_events = events t;
    tr_dropped = dropped t;
    tr_telemetry = telemetry t;
  }
