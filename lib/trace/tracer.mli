(** Bounded ring-buffer event tracer — one per trial.

    The ring keeps the {e most recent} [trace_capacity] events (flight
    recorder semantics: a hang can emit millions of watchpoint hits and the
    interesting suffix is the one ending in the crash). {!Telemetry}
    counters are exact regardless of drops. Capacity 0 disables event
    retention and keeps only the counters — cheap enough that campaigns
    always run with at least a telemetry-only tracer. *)

type config = { trace_capacity : int  (** max retained events per trial; 0 = counters only *) }

val default_config : config
(** 4096 events per trial. *)

val telemetry_only : config
(** Capacity 0: exact counters, no event retention. *)

val validated : config -> config
(** Raises [Invalid_argument] on a negative capacity. *)

type t

val create : config -> t

val record : t -> Event.stamp -> Event.t -> unit
(** Append an event (dropping the oldest retained one when the ring is full)
    and bump the telemetry counters. *)

val recorded : t -> int
(** Total events ever recorded, including dropped ones. *)

val dropped : t -> int

val events : t -> (Event.stamp * Event.t) list
(** Retained events, oldest first. *)

val telemetry : t -> Telemetry.t
(** Exact counters for this tracer ([tl_boots] is 0 here; the campaign fills
    it from the executor). *)

(** {2 Per-trial result}

    The immutable value a trial hands back to the executor; the executor
    merges these in trial-index order, so campaign traces are identical for
    every executor. *)

type trial = {
  tr_index : int;
  tr_target : string;  (** rendered target description *)
  tr_outcome : string;  (** rendered outcome label *)
  tr_events : (Event.stamp * Event.t) list;
  tr_dropped : int;
  tr_telemetry : Telemetry.t;
}

val trial_of : t -> index:int -> target:string -> outcome:string -> trial
