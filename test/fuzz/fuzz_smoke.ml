(* @fuzz-smoke: the seconds-scale conformance gate wired into @ci.

   Four stages:
   1. canonical-stream roundtrip fuzz, >= 2,000 generated streams per ISA;
   2. corrupted-stream robustness fuzz (decoder totality + canonicalisation);
   3. >= 100 differential fault trials under all four configurations
      {fast, reference} x {Sequential, Parallel};
   4. an artificially planted decoder bug (Jcc L decoded as Jcc GE) must be
      caught, shrunk to a <= 3-instruction reproducer, written as a repro
      file, and that file must fail under the planted bug while passing under
      the production decoder.

   Finally every committed repro under test/repro/ is replayed, so historical
   fuzz finds stay fixed. *)

open Ferrite_check
module Rng = Ferrite_machine.Rng
module CI = Ferrite_cisc.Insn

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("fuzz-smoke: " ^ s); exit 1) fmt

let expect_clean what = function
  | None -> ()
  | Some (f : Fuzz.find) -> fail "%s: %s" what f.Fuzz.f_msg

let () =
  let t0 = Unix.gettimeofday () in
  let rng = Rng.create ~seed:0xF177EDL in
  let counts = Fuzz.fresh_counts () in

  (* 1. canonical streams *)
  expect_clean "p4 roundtrip violation"
    (Fuzz.fuzz_cisc_streams ~rng ~count:2_200 ~len:16 counts);
  expect_clean "g4 roundtrip violation"
    (Fuzz.fuzz_risc_streams ~rng ~count:2_200 ~len:16 counts);

  (* 2. corrupted streams *)
  expect_clean "p4 robustness violation"
    (Fuzz.fuzz_cisc_robust ~rng ~count:600 ~len:16 counts);
  expect_clean "g4 robustness violation"
    (Fuzz.fuzz_risc_robust ~rng ~count:600 ~len:16 counts);

  (* 3. differential fault trials *)
  expect_clean "differential divergence"
    (Fuzz.fuzz_diff ~rng ~specs:13 ~injections:8 ~step_budget:120_000 counts);
  if counts.Fuzz.c_fault_trials < 100 then
    fail "only %d differential fault trials ran (want >= 100)"
      counts.Fuzz.c_fault_trials;

  (* 4. planted decoder bug: catch, shrink, persist, replay *)
  let buggy ~fetch pc =
    let d = Ferrite_cisc.Decode.decode ~fetch pc in
    match d.CI.insn with
    | CI.Jcc (CI.L, rel) -> { d with CI.insn = CI.Jcc (CI.GE, rel) }
    | _ -> d
  in
  (match
     Fuzz.fuzz_cisc_streams ~decode:buggy ~rng:(Rng.create ~seed:0xB06DL)
       ~count:20_000 ~len:16 (Fuzz.fresh_counts ())
   with
  | None -> fail "planted decoder bug (Jcc L -> GE) was not caught"
  | Some f ->
    if f.Fuzz.f_units > 3 then
      fail "planted bug shrunk to %d instructions (want <= 3)" f.Fuzz.f_units;
    let dir = Filename.concat (Filename.get_temp_dir_name ()) "ferrite-fuzz-smoke" in
    let path = Repro.save ~dir f.Fuzz.f_repro in
    (match Repro.load path with
    | Error e -> fail "written repro %s does not load: %s" path e
    | Ok r ->
      let bytes =
        match r with
        | Repro.Stream { bytes; _ } -> bytes
        | Repro.Fault _ -> fail "planted decoder bug produced a fault repro"
      in
      (match Oracle.check_cisc_stream ~decode:buggy bytes with
      | Ok () -> fail "shrunk repro no longer reproduces under the planted bug"
      | Error _ -> ());
      (match Repro.replay r with
      | Ok () -> ()
      | Error e -> fail "production decoder fails the shrunk repro: %s" e));
    Sys.remove path);

  (* 5. committed repros stay fixed *)
  let repro_dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "../repro" in
  let committed = Repro.load_dir repro_dir in
  List.iter
    (fun (path, r) ->
      match r with
      | Error e -> fail "%s: unreadable repro: %s" path e
      | Ok r -> (
        match Repro.replay r with
        | Ok () -> ()
        | Error e -> fail "%s: historical find regressed: %s" path e))
    committed;

  Printf.printf "fuzz-smoke: %s; %d committed repros replayed; %.1fs\n"
    (Fuzz.render_counts counts) (List.length committed) (Unix.gettimeofday () -. t0)
