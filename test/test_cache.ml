(* The cache hierarchy (software TLB, dirty-page restore, decode caches) must
   be a pure acceleration: invisible in records, telemetry and event traces.
   Unit tests pin the eviction contract — any write to an executable page,
   including an injected bit flip, must evict the stale decode entry — and a
   differential property replays whole campaigns with the fast paths disabled
   ([Memory.set_fast_paths_default false]) to check bit-identical results. *)

open Ferrite_machine
module Campaign = Ferrite_injection.Campaign
module Executor = Ferrite_injection.Executor
module Engine = Ferrite_injection.Engine
module Target = Ferrite_injection.Target
module Image = Ferrite_kir.Image

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- decode-cache eviction ----------------------------------------------- *)

let code_base = 0xC0100000
let stop_addr = 0xFFFF0000

let test_cisc_poke_evicts () =
  let module Cpu = Ferrite_cisc.Cpu in
  let mem = Memory.create () in
  Memory.map mem ~addr:code_base ~size:0x1000 ~perm:Memory.perm_rx;
  (* B8 imm32: mov eax, 0x11 *)
  Memory.poke8 mem code_base 0xB8;
  Memory.poke32_le mem (code_base + 1) 0x11;
  let cpu = Cpu.create ~mem ~stop_addr in
  cpu.Cpu.eip <- code_base;
  ignore (Cpu.step cpu);
  check_int "first decode" 0x11 cpu.Cpu.regs.(Cpu.eax);
  cpu.Cpu.eip <- code_base;
  ignore (Cpu.step cpu);
  let hits, _ = Cpu.decode_cache_stats cpu in
  check_bool "re-decode of an untouched page hits the cache" true (hits > 0);
  (* overwrite the immediate in place: the cached decode is now stale *)
  Memory.poke8 mem (code_base + 1) 0x22;
  cpu.Cpu.eip <- code_base;
  ignore (Cpu.step cpu);
  check_int "poked byte is decoded, not the cached copy" 0x22
    cpu.Cpu.regs.(Cpu.eax)

let test_risc_flip_evicts () =
  let module Cpu = Ferrite_risc.Cpu in
  let mem = Memory.create () in
  Memory.map mem ~addr:code_base ~size:0x1000 ~perm:Memory.perm_rx;
  (* addi r3, r0, 5 (li r3, 5) *)
  Memory.poke32_be mem code_base 0x38600005;
  let cpu = Cpu.create ~mem ~stop_addr in
  cpu.Cpu.pc <- code_base;
  ignore (Cpu.step cpu);
  check_int "li executed" 5 cpu.Cpu.gpr.(3);
  cpu.Cpu.pc <- code_base;
  ignore (Cpu.step cpu);
  let hits, _ = Cpu.decode_cache_stats cpu in
  check_bool "re-decode of an untouched page hits the cache" true (hits > 0);
  (* an injected code error: flip bit 1 of the word (LSB lives at the
     highest byte address on the big-endian fetch path) *)
  Memory.flip_bit mem ~addr:(code_base + 3) ~bit:1;
  cpu.Cpu.pc <- code_base;
  ignore (Cpu.step cpu);
  check_int "flipped word is decoded, not the cached copy" 7 cpu.Cpu.gpr.(3)

(* Stores issued by the CPU itself (self-modifying code, or fault-corrupted
   code overwriting its neighbours) must evict cached decodes just like
   external pokes: the store path and the injector share the same memory
   write entry points. *)

let test_cisc_cpu_store_evicts () =
  let module Cpu = Ferrite_cisc.Cpu in
  let mem = Memory.create () in
  Memory.map mem ~addr:code_base ~size:0x1000 ~perm:Memory.perm_rwx;
  (* B8 imm32: mov eax, 0x11 *)
  Memory.poke8 mem code_base 0xB8;
  Memory.poke32_le mem (code_base + 1) 0x11;
  (* C7 05 disp32 imm32: mov dword [code_base+1], 0x22 — rewrites the
     immediate of the instruction above *)
  Memory.poke8 mem (code_base + 5) 0xC7;
  Memory.poke8 mem (code_base + 6) 0x05;
  Memory.poke32_le mem (code_base + 7) (code_base + 1);
  Memory.poke32_le mem (code_base + 11) 0x22;
  let cpu = Cpu.create ~mem ~stop_addr in
  cpu.Cpu.eip <- code_base;
  ignore (Cpu.step cpu);
  check_int "first decode" 0x11 cpu.Cpu.regs.(Cpu.eax);
  ignore (Cpu.step cpu) (* the store: self-modifying write via the CPU *);
  cpu.Cpu.eip <- code_base;
  ignore (Cpu.step cpu);
  check_int "CPU store invalidated the cached decode" 0x22 cpu.Cpu.regs.(Cpu.eax)

let test_risc_cpu_store_evicts () =
  let module Cpu = Ferrite_risc.Cpu in
  let mem = Memory.create () in
  Memory.map mem ~addr:code_base ~size:0x1000 ~perm:Memory.perm_rwx;
  (* addi r3, r0, 5 (li r3, 5) *)
  Memory.poke32_be mem code_base 0x38600005;
  (* stw r5, 0(r6) — will overwrite the li above with li r3, 7 *)
  Memory.poke32_be mem (code_base + 4) 0x90A60000;
  let cpu = Cpu.create ~mem ~stop_addr in
  cpu.Cpu.gpr.(5) <- 0x38600007;
  cpu.Cpu.gpr.(6) <- code_base;
  cpu.Cpu.pc <- code_base;
  ignore (Cpu.step cpu);
  check_int "li executed" 5 cpu.Cpu.gpr.(3);
  ignore (Cpu.step cpu) (* the store *);
  cpu.Cpu.pc <- code_base;
  ignore (Cpu.step cpu);
  check_int "CPU store invalidated the cached decode" 7 cpu.Cpu.gpr.(3)

(* --- differential property ------------------------------------------------ *)

let run_campaign ~fast ~executor cfg =
  Memory.set_fast_paths_default fast;
  Fun.protect
    ~finally:(fun () -> Memory.set_fast_paths_default true)
    (fun () ->
      Campaign.run ~executor ~tracer:Ferrite_trace.Tracer.default_config cfg)

let kinds = [| Target.Stack; Target.Data; Target.Code; Target.Register |]
let arches = [| Image.Cisc; Image.Risc |]

let prop_fast_paths_invisible =
  QCheck.Test.make ~name:"cached == uncached (records, telemetry, traces)"
    ~count:4
    QCheck.(triple (int_bound 0xFFFF) (int_bound 3) (int_bound 1))
    (fun (seed, ki, ai) ->
      let cfg =
        {
          (Campaign.default ~arch:arches.(ai) ~kind:kinds.(ki) ~injections:5) with
          Campaign.seed = Int64.of_int (succ seed);
          engine = { Engine.default_config with Engine.step_budget = 200_000 };
        }
      in
      let base = run_campaign ~fast:false ~executor:Executor.Sequential cfg in
      let seq = run_campaign ~fast:true ~executor:Executor.Sequential cfg in
      let par =
        run_campaign ~fast:true ~executor:(Executor.Parallel { domains = 3 }) cfg
      in
      base.Campaign.records = seq.Campaign.records
      && base.Campaign.telemetry = seq.Campaign.telemetry
      && base.Campaign.traces = seq.Campaign.traces
      (* parallel may differ in boots (hence tl_boots) but nothing else *)
      && base.Campaign.records = par.Campaign.records
      && base.Campaign.traces = par.Campaign.traces
      && Ferrite_trace.Telemetry.with_boots base.Campaign.telemetry par.Campaign.reboots
         = Ferrite_trace.Telemetry.with_boots par.Campaign.telemetry par.Campaign.reboots)

let test_uncached_reports_no_cache_activity () =
  let cfg =
    {
      (Campaign.default ~arch:Image.Cisc ~kind:Target.Stack ~injections:3) with
      Campaign.seed = 0xCAFEL;
      engine = { Engine.default_config with Engine.step_budget = 100_000 };
    }
  in
  let r = run_campaign ~fast:false ~executor:Executor.Sequential cfg in
  check_int "no tlb hits" 0 r.Campaign.cache.Cache_stats.cs_tlb_hits;
  check_int "no decode hits" 0 r.Campaign.cache.Cache_stats.cs_decode_hits;
  check_int "no fast restores" 0 r.Campaign.cache.Cache_stats.cs_restore_fast;
  let rc = run_campaign ~fast:true ~executor:Executor.Sequential cfg in
  check_bool "cached run reports decode hits" true
    (rc.Campaign.cache.Cache_stats.cs_decode_hits > 0);
  check_bool "identical records regardless" true
    (r.Campaign.records = rc.Campaign.records)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ferrite_cache"
    [
      ( "decode eviction",
        [
          Alcotest.test_case "cisc poke evicts" `Quick test_cisc_poke_evicts;
          Alcotest.test_case "risc flip evicts" `Quick test_risc_flip_evicts;
          Alcotest.test_case "cisc CPU store evicts" `Quick test_cisc_cpu_store_evicts;
          Alcotest.test_case "risc CPU store evicts" `Quick test_risc_cpu_store_evicts;
        ] );
      ( "differential",
        [
          q prop_fast_paths_invisible;
          Alcotest.test_case "cache stats reflect mode" `Quick
            test_uncached_reports_no_cache_activity;
        ] );
    ]
