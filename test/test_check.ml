(* Tests for ferrite_check itself: generator determinism, the roundtrip and
   robustness oracles, ddmin minimality, the planted-decoder-bug
   catch-and-shrink pipeline, repro (de)serialisation and the replay of the
   committed reproducers under test/repro/. *)

open Ferrite_check
module Rng = Ferrite_machine.Rng
module Image = Ferrite_kir.Image
module CI = Ferrite_cisc.Insn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---------- generators ---------- *)

let test_gen_deterministic () =
  let stream seed = Gen.cisc_stream (Rng.create ~seed) ~len:32 in
  check_bool "same seed, same cisc stream" true (stream 7L = stream 7L);
  check_bool "different seed, different stream" true (stream 7L <> stream 8L);
  let rstream seed = Gen.risc_stream (Rng.create ~seed) ~len:32 in
  check_bool "same seed, same risc stream" true (rstream 7L = rstream 7L);
  check_bool "different seed, different stream" true (rstream 7L <> rstream 8L)

let test_gen_always_encodable () =
  let rng = Rng.create ~seed:11L in
  for _ = 1 to 500 do
    ignore (Oracle.encode_cisc_stream (Gen.cisc_stream rng ~len:8));
    ignore (Oracle.encode_risc_stream (Gen.risc_stream rng ~len:8))
  done

(* ---------- oracles ---------- *)

let test_roundtrip_clean () =
  let counts = Fuzz.fresh_counts () in
  let rng = Rng.create ~seed:21L in
  (match Fuzz.fuzz_cisc_streams ~rng ~count:300 ~len:12 counts with
  | None -> ()
  | Some f -> Alcotest.failf "cisc: %s" f.Fuzz.f_msg);
  match Fuzz.fuzz_risc_streams ~rng ~count:300 ~len:12 counts with
  | None -> ()
  | Some f -> Alcotest.failf "risc: %s" f.Fuzz.f_msg

let test_robust_clean () =
  let counts = Fuzz.fresh_counts () in
  let rng = Rng.create ~seed:22L in
  (match Fuzz.fuzz_cisc_robust ~rng ~count:200 ~len:12 counts with
  | None -> ()
  | Some f -> Alcotest.failf "cisc: %s" f.Fuzz.f_msg);
  match Fuzz.fuzz_risc_robust ~rng ~count:200 ~len:12 counts with
  | None -> ()
  | Some f -> Alcotest.failf "risc: %s" f.Fuzz.f_msg

let test_roundtrip_rejects_desync () =
  (* a truncated stream: mov eax, imm32 with only two immediate bytes *)
  let bytes = "\xB8\x11\x00" in
  check_bool "truncation detected" true
    (Result.is_error (Oracle.check_cisc_stream bytes))

(* ---------- shrinker ---------- *)

let test_ddmin_minimal_pair () =
  let calls = ref 0 in
  let fails l =
    incr calls;
    List.mem 3 l && List.mem 7 l
  in
  let small = Shrink.ddmin ~fails (List.init 40 Fun.id) in
  check_bool "exactly the interacting pair" true (List.sort compare small = [ 3; 7 ]);
  check_bool "polynomial probe count" true (!calls < 2_000)

let test_ddmin_requires_failing_input () =
  match Shrink.ddmin ~fails:(fun _ -> false) [ 1; 2; 3 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ddmin must reject a passing input"

let test_shrink_int_finds_threshold () =
  check_int "threshold found" 37 (Shrink.shrink_int ~fails:(fun v -> v >= 37) ~lo:1 1_000);
  check_int "lo itself can fail" 1 (Shrink.shrink_int ~fails:(fun _ -> true) ~lo:1 1_000)

(* ---------- planted decoder bug: catch + shrink + replay ---------- *)

let buggy_decode ~fetch pc =
  let d = Ferrite_cisc.Decode.decode ~fetch pc in
  match d.CI.insn with
  | CI.Jcc (CI.L, rel) -> { d with CI.insn = CI.Jcc (CI.GE, rel) }
  | _ -> d

let test_planted_bug_caught_and_shrunk () =
  let rng = Rng.create ~seed:0xB06DL in
  match
    Fuzz.fuzz_cisc_streams ~decode:buggy_decode ~rng ~count:20_000 ~len:16
      (Fuzz.fresh_counts ())
  with
  | None -> Alcotest.fail "planted decoder bug was not caught"
  | Some f ->
    check_bool "shrunk to <= 3 instructions" true (f.Fuzz.f_units <= 3);
    (match f.Fuzz.f_repro with
    | Repro.Stream { bytes; _ } ->
      check_bool "repro still fails under the planted bug" true
        (Result.is_error (Oracle.check_cisc_stream ~decode:buggy_decode bytes))
    | Repro.Fault _ -> Alcotest.fail "expected a stream repro");
    check_bool "production decoder passes the repro" true
      (Result.is_ok (Repro.replay f.Fuzz.f_repro))

(* ---------- repro files ---------- *)

let test_repro_string_roundtrip () =
  let stream =
    Repro.Stream
      { arch = Image.Cisc; oracle = Repro.Robust; bytes = "\x66\xAB"; note = "stos16" }
  in
  let fault =
    Repro.Fault
      {
        spec =
          {
            Diff.df_arch = Image.Risc;
            df_kind = Ferrite_injection.Target.Code;
            df_seed = 0x123456789ABCDEFL;
            df_injections = 8;
            df_step_budget = 50_000;
            df_model = Ferrite_injection.Fault_model.Stuck_at { value = 1 };
            df_targeting = Ferrite_injection.Target.Profile_weighted;
          };
        trial = 3;
        note = "example";
      }
  in
  List.iter
    (fun r ->
      match Repro.of_string (Repro.to_string r) with
      | Ok r' -> check_bool "roundtrips" true (r = r')
      | Error e -> Alcotest.failf "parse failed: %s" e)
    [ stream; fault ];
  check_string "deterministic file name" (Repro.file_name stream) (Repro.file_name stream)

let test_repro_parse_errors () =
  let expect_error s =
    check_bool ("rejects: " ^ String.escaped s) true (Result.is_error (Repro.of_string s))
  in
  expect_error "";
  expect_error "not-a-repro 1\nkind stream\n";
  expect_error "ferrite-repro 1\nkind stream\narch p4\noracle roundtrip\nbytes zz\n";
  (* fault with trial out of range *)
  expect_error
    "ferrite-repro 1\nkind fault\ntarget g4 code\nseed 0x1\ninjections 4\ntrial 9\nstep-budget 1000\n"

let test_committed_repros_replay () =
  let repros = Repro.load_dir "repro" in
  check_bool "seed repros are committed" true (List.length repros >= 3);
  List.iter
    (fun (path, r) ->
      match r with
      | Error e -> Alcotest.failf "%s: unreadable: %s" path e
      | Ok r -> (
        match Repro.replay r with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: historical find regressed: %s" path e))
    repros

(* ---------- differential runner ---------- *)

let test_diff_small_spec_clean () =
  let spec =
    {
      Diff.df_arch = Image.Cisc;
      df_kind = Ferrite_injection.Target.Stack;
      df_seed = 0xD1FFL;
      df_injections = 3;
      df_step_budget = 60_000;
      df_model = Ferrite_injection.Fault_model.Single_bit_transient;
      df_targeting = Ferrite_injection.Target.Uniform;
    }
  in
  (match Diff.run_spec spec with
  | Ok () -> ()
  | Error mm ->
    Alcotest.failf "%s diverged in %s (trial %d)" mm.Diff.mm_config mm.Diff.mm_what
      mm.Diff.mm_trial);
  (* single-trial replay agrees with the whole-campaign run *)
  for t = 0 to spec.Diff.df_injections - 1 do
    match Diff.run_trial spec ~trial:t with
    | Ok () -> ()
    | Error mm -> Alcotest.failf "trial %d diverged in %s" t mm.Diff.mm_what
  done;
  check_bool "isolate on a clean spec reports nothing" true (Diff.isolate spec = None)

let () =
  Alcotest.run "ferrite_check"
    [
      ( "generators",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "always encodable" `Quick test_gen_always_encodable;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "roundtrip clean" `Quick test_roundtrip_clean;
          Alcotest.test_case "robust clean" `Quick test_robust_clean;
          Alcotest.test_case "desync detected" `Quick test_roundtrip_rejects_desync;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "ddmin minimal pair" `Quick test_ddmin_minimal_pair;
          Alcotest.test_case "ddmin rejects passing input" `Quick
            test_ddmin_requires_failing_input;
          Alcotest.test_case "shrink_int threshold" `Quick test_shrink_int_finds_threshold;
        ] );
      ( "planted bug",
        [
          Alcotest.test_case "caught, shrunk, replayed" `Quick
            test_planted_bug_caught_and_shrunk;
        ] );
      ( "repro files",
        [
          Alcotest.test_case "string roundtrip" `Quick test_repro_string_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_repro_parse_errors;
          Alcotest.test_case "committed repros replay" `Quick test_committed_repros_replay;
        ] );
      ( "differential",
        [ Alcotest.test_case "small spec clean" `Quick test_diff_small_spec_clean ] );
    ]
