(* Tests for the plan -> execute -> merge decomposition: trial-plan purity,
   executor equivalence (Parallel == Sequential, record for record), the
   pristine-state system cache, and collector stat merging. *)

open Ferrite_kernel
open Ferrite_injection
module Image = Ferrite_kir.Image
module Rng = Ferrite_machine.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- planning ---------- *)

let test_plan_is_pure () =
  let cfg = Campaign.default ~arch:Image.Cisc ~kind:Target.Stack ~injections:25 in
  let p1 = Campaign.plan cfg and p2 = Campaign.plan cfg in
  check_int "one spec per injection" 25 (Array.length p1);
  Array.iteri
    (fun i (s1 : Trial.spec) ->
      let s2 = p2.(i) in
      check_int "indices are positional" i s1.Trial.index;
      check_bool "same target seed" true (s1.Trial.target_seed = s2.Trial.target_seed);
      check_bool "same workload seed" true (s1.Trial.workload_seed = s2.Trial.workload_seed);
      check_bool "same collector seed" true (s1.Trial.collector_seed = s2.Trial.collector_seed);
      check_bool "same workload program" true
        (s1.Trial.workload.Ferrite_workload.Workload.wl_name
        = s2.Trial.workload.Ferrite_workload.Workload.wl_name))
    p1

let test_plan_is_counter_style () =
  (* a trial's seeds must not depend on how many trials precede it: the spec
     at index i of a short plan equals the spec at index i of a long plan *)
  let cfg = Campaign.default ~arch:Image.Cisc ~kind:Target.Data ~injections:30 in
  let long = Campaign.plan cfg in
  let short = Campaign.plan { cfg with Campaign.injections = 7 } in
  Array.iteri
    (fun i (s : Trial.spec) ->
      check_bool "prefix-independent seeds" true
        (s.Trial.target_seed = long.(i).Trial.target_seed
        && s.Trial.workload_seed = long.(i).Trial.workload_seed
        && s.Trial.collector_seed = long.(i).Trial.collector_seed))
    short

let test_plan_seeds_distinct () =
  let cfg = Campaign.default ~arch:Image.Risc ~kind:Target.Code ~injections:200 in
  let specs = Campaign.plan cfg in
  let seeds = Array.to_list (Array.map (fun s -> s.Trial.target_seed) specs) in
  check_int "distinct per-trial streams" 200 (List.length (List.sort_uniq compare seeds))

(* ---------- executor equivalence ---------- *)

let all_kinds = [ Target.Stack; Target.Register; Target.Data; Target.Code ]

let kind_name = function
  | Target.Stack -> "stack"
  | Target.Register -> "register"
  | Target.Data -> "data"
  | Target.Code -> "code"

let test_parallel_matches_sequential () =
  List.iter
    (fun arch ->
      List.iter
        (fun kind ->
          let cfg =
            { (Campaign.default ~arch ~kind ~injections:10) with Campaign.seed = 0xBEE5L }
          in
          let rs = Campaign.run cfg in
          let rp = Campaign.run ~executor:(Executor.Parallel { domains = 4 }) cfg in
          let label =
            Printf.sprintf "%s/%s"
              (match arch with Image.Cisc -> "p4" | Image.Risc -> "g4")
              (kind_name kind)
          in
          check_bool (label ^ ": records identical") true
            (rs.Campaign.records = rp.Campaign.records);
          check_bool (label ^ ": collector stats identical") true
            (rs.Campaign.collector = rp.Campaign.collector))
        all_kinds)
    [ Image.Cisc; Image.Risc ]

let test_parallel_is_deterministic () =
  let cfg =
    { (Campaign.default ~arch:Image.Cisc ~kind:Target.Data ~injections:16) with
      Campaign.seed = 0x5EEDL }
  in
  let executor = Executor.Parallel { domains = 3 } in
  let r1 = Campaign.run ~executor cfg and r2 = Campaign.run ~executor cfg in
  check_bool "two parallel runs agree" true (r1.Campaign.records = r2.Campaign.records);
  check_bool "reboot counts agree" true (r1.Campaign.reboots = r2.Campaign.reboots)

let test_executor_helpers () =
  check_bool "jobs<=1 is sequential" true
    (Executor.of_jobs 1 = Executor.Sequential && Executor.of_jobs 0 = Executor.Sequential);
  let cores = Domain.recommended_domain_count () in
  let expected n =
    let n = min n cores in
    if n <= 1 then Executor.Sequential else Executor.Parallel { domains = n }
  in
  check_bool "jobs>1 is parallel, clamped to cores" true
    (Executor.of_jobs 4 = expected 4);
  check_bool "huge job counts clamp to the core count" true
    (Executor.of_jobs 10_000 = expected 10_000);
  check_bool "negative jobs rejected" true
    (match Executor.of_jobs (-2) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "describe" true
    (Executor.describe Executor.Sequential = "sequential"
    && Executor.describe (Executor.Parallel { domains = 2 }) = "parallel:2")

(* ---------- system cache / logical reboot ---------- *)

let test_restore_equals_fresh_boot () =
  (* run a workload on a booted system, restore, and compare the machine
     against a fresh boot: pc, sp, counters, and a sweep of kernel data *)
  let image = Boot.build_image Image.Cisc in
  let sys = Boot.boot ~image Image.Cisc in
  let snap = System.snapshot sys in
  let fresh = Boot.boot ~image Image.Cisc in
  let rng = Rng.create ~seed:99L in
  let wl = Ferrite_workload.Workload.mix ~ops:8 () in
  let runner =
    Ferrite_workload.Runner.create sys ~ops:(wl.Ferrite_workload.Workload.wl_ops rng)
  in
  let steps = ref 0 in
  while !steps < 200_000 do
    if !steps mod 128 = 0 && Ferrite_workload.Runner.tick runner = Ferrite_workload.Runner.Done
    then steps := 200_000
    else begin
      ignore (System.step sys);
      incr steps
    end
  done;
  check_bool "workload moved the machine" true
    (System.pc sys <> System.pc fresh
    || (System.counters sys).Ferrite_machine.Counters.cycles
       <> (System.counters fresh).Ferrite_machine.Counters.cycles);
  System.restore sys snap;
  check_int "pc restored" (System.pc fresh) (System.pc sys);
  check_int "sp restored" (System.sp fresh) (System.sp sys);
  check_int "cycles restored"
    (System.counters fresh).Ferrite_machine.Counters.cycles
    (System.counters sys).Ferrite_machine.Counters.cycles;
  check_int "jiffies restored" (System.global fresh "jiffies") (System.global sys "jiffies");
  let ds = sys.System.image.Image.img_data in
  let base = ds.Ferrite_kir.Layout.ds_base in
  for i = 0 to (ds.Ferrite_kir.Layout.ds_size / 4) - 1 do
    let addr = base + (4 * i) in
    if System.peek32 sys addr <> System.peek32 fresh addr then
      Alcotest.failf "data word %08x differs after restore" addr
  done

let test_restore_cross_arch_rejected () =
  let p4 = Boot.boot Image.Cisc and g4 = Boot.boot Image.Risc in
  let snap = System.snapshot g4 in
  match System.restore p4 snap with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "cross-architecture restore must be rejected"

(* ---------- collector stats ---------- *)

let test_collector_stats_merge () =
  let c1 = Collector.create ~loss_rate:1.0 ~seed:1L () in
  let c2 = Collector.create ~loss_rate:0.0 ~seed:2L () in
  let info =
    {
      Outcome.ci_cause = Crash_cause.P4 Crash_cause.Bad_paging;
      ci_latency = 1;
      ci_pc = 0;
      ci_function = None;
    }
  in
  for _ = 1 to 5 do ignore (Collector.send c1 info) done;
  for _ = 1 to 3 do ignore (Collector.send c2 info) done;
  let m = Collector.merge_stats (Collector.stats c1) (Collector.stats c2) in
  check_int "received summed" 3 m.Collector.st_received;
  check_int "lost summed" 5 m.Collector.st_lost;
  check_bool "zero is the unit" true
    (Collector.merge_stats Collector.zero_stats (Collector.stats c1) = Collector.stats c1)

let test_campaign_collector_accounting () =
  (* delivered + lost must equal the number of crashes that produced a dump:
     every Known_crash was delivered; each loss surfaces as Unknown_crash *)
  let cfg = Campaign.default ~arch:Image.Cisc ~kind:Target.Code ~injections:40 in
  let r = Campaign.run cfg in
  let s = Campaign.summarize r in
  check_int "known crashes were delivered dumps" s.Campaign.known_crash
    r.Campaign.collector.Collector.st_received;
  check_bool "losses bounded by hang/unknown" true
    (r.Campaign.collector.Collector.st_lost <= s.Campaign.hang_or_unknown)

let () =
  Alcotest.run "ferrite_executor"
    [
      ( "plan",
        [
          Alcotest.test_case "pure" `Quick test_plan_is_pure;
          Alcotest.test_case "counter-style" `Quick test_plan_is_counter_style;
          Alcotest.test_case "distinct seeds" `Quick test_plan_seeds_distinct;
        ] );
      ( "executors",
        [
          Alcotest.test_case "parallel == sequential" `Quick test_parallel_matches_sequential;
          Alcotest.test_case "parallel deterministic" `Quick test_parallel_is_deterministic;
          Alcotest.test_case "helpers" `Quick test_executor_helpers;
        ] );
      ( "system cache",
        [
          Alcotest.test_case "restore == fresh boot" `Quick test_restore_equals_fresh_boot;
          Alcotest.test_case "cross-arch rejected" `Quick test_restore_cross_arch_rejected;
        ] );
      ( "collector",
        [
          Alcotest.test_case "stats merge" `Quick test_collector_stats_merge;
          Alcotest.test_case "campaign accounting" `Quick test_campaign_collector_accounting;
        ] );
    ]
