(* Tests for the distributed campaign fabric: wire-codec roundtrips and
   torn-frame recovery, the lease-table state machine, and full controller +
   worker-fleet campaigns — plain, killed-and-rejoined, wire-chaos-drilled
   and poison-trial-quarantined — every one of which must merge byte-identical
   to a sequential run (quarantined trials excepted, and then only the way an
   in-process quarantine differs). *)

open Ferrite_injection
open Ferrite_fabric
open Fabric
module Image = Ferrite_kir.Image
module Tracer = Ferrite_trace.Tracer
module Telemetry = Ferrite_trace.Telemetry
module Cache_stats = Ferrite_machine.Cache_stats
module Store = Ferrite_store.Store

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_cfg injections =
  { (Campaign.default ~arch:Image.Cisc ~kind:Target.Stack ~injections) with
    Campaign.seed = 0x2004L }

let stamp =
  { Ferrite_trace.Event.s_cycles = 0; s_instructions = 0; s_pc = 0; s_function = None }

let mk_entry i =
  let tracer = Tracer.create Tracer.default_config in
  Tracer.record tracer stamp (Ferrite_trace.Event.Trial_begin { trial = i; target = "t" });
  {
    Journal.je_index = i;
    je_record =
      {
        Outcome.r_target = Target.Data_target { addr = 4 * i; bit = i mod 8 };
        r_outcome = (if i mod 2 = 0 then Outcome.Not_manifested else Outcome.Hang);
        r_activated = true;
        r_activation_cycle = Some (100 + i);
        r_model = Fault_model.Single_bit_transient;
      };
    je_stats =
      {
        Collector.st_received = i;
        st_lost = i mod 3;
        st_retransmitted = 0;
        st_gave_up = 0;
        st_dup_dropped = 0;
        st_by_model = (if i > 0 then [ ("single_bit", i) ] else []);
      };
    je_trace = Tracer.trial_of tracer ~index:i ~target:"t" ~outcome:"ok";
  }

(* ---------- wire codec ---------- *)

let mk_welcome i =
  {
    Wire.w_worker = i;
    w_total = 10 + i;
    w_config = small_cfg (8 + i);
    w_policy = (if i land 1 = 0 then Supervisor.default_policy else Supervisor.instant_policy);
    w_chaos =
      (if i land 2 = 0 then Supervisor.no_chaos
       else Supervisor.drill_plan ~seed:7L ~injections:16);
    w_tracer = (if i land 1 = 0 then Tracer.telemetry_only else Tracer.default_config);
    w_wire_chaos =
      (if i land 4 = 0 then None
       else Some { Wire.wc_drop = 0.125; wc_dup = 0.0625; wc_reorder = 0.0625 });
    w_wire_seed = Int64.of_int (i * 977);
  }

let mk_bye i =
  {
    Wire.by_reboots = i mod 5;
    by_cache = Cache_stats.zero;
    by_retransmitted = i mod 3;
    by_leases = i mod 7;
  }

(* Deterministic message zoo indexed by a small int — every constructor,
   including marshalled briefing/result/goodbye payloads. *)
let mk_msg i =
  match i mod 10 with
  | 0 -> Wire.Hello { h_pid = 17 * i; h_protocol = Wire.protocol_version }
  | 1 -> Wire.Welcome (mk_welcome (i mod 8))
  | 2 -> Wire.Lease_request { lr_worker = i }
  | 3 -> Wire.Lease_grant { lg_lease = i; lg_lo = 3 * i; lg_hi = (3 * i) + 7 }
  | 4 -> Wire.Steal { st_lease = i }
  | 5 -> Wire.Steal_return { sr_lease = i; sr_lo = i; sr_hi = i + (i mod 3) }
  | 6 ->
    Wire.Result
      { rs_seq = i; rs_index = i mod 11; rs_entry = mk_entry (i mod 11); rs_dump = None }
  | 7 -> Wire.Ack { ak_seq = i }
  | 8 -> Wire.Heartbeat { hb_worker = i }
  | _ -> Wire.Bye { bye_stats = (if i land 1 = 0 then None else Some (mk_bye i)) }

let prop_codec_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"encode → decode is the identity for every message" ~count:200
       QCheck.(small_list (int_range 0 80))
       (fun picks ->
         let msgs = List.map mk_msg picks in
         (* each payload decodes alone… *)
         List.for_all
           (fun m -> Wire.decode_payload (Wire.encode_payload m) = Some m)
           msgs
         (* …and a concatenated stream decodes in order, fully consumed *)
         &&
         let bytes = String.concat "" (List.map Wire.encode msgs) in
         Wire.decode_prefix bytes = (msgs, String.length bytes)))

let rec take n = function x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> []

(* The torn-frame property, mirroring journal recovery: however the stream is
   cut (mid-frame, mid-payload) and whatever garbage follows, decoding
   returns the longest valid prefix and never raises. *)
let prop_torn_stream =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"a torn stream decodes to its longest valid prefix" ~count:200
       QCheck.(triple (small_list (int_range 0 80)) (int_range 0 10_000) (int_range 0 48))
       (fun (picks, cut_frac, garbage) ->
         let msgs = List.map mk_msg picks in
         let frames = List.map Wire.encode msgs in
         let bytes = String.concat "" frames in
         let cut = cut_frac * String.length bytes / 10_000 in
         let torn =
           String.sub bytes 0 cut
           ^ String.init garbage (fun i -> Char.chr (i * 37 mod 256))
         in
         (* how many whole frames survive the cut — stop at the first torn
            one; later frames are unreachable even if they'd fit in [cut] *)
         let expect, consumed =
           let rec walk n off = function
             | frame :: rest when off + String.length frame <= cut ->
               walk (n + 1) (off + String.length frame) rest
             | _ -> (n, off)
           in
           walk 0 0 frames
         in
         let decoded, used = Wire.decode_prefix torn in
         (* Garbage may coincidentally restore the torn frame's missing tail
            (it is deterministic, not adversarial), so with garbage the
            decoder may legally get {e ahead} of [expect] — but only ever
            along the true message sequence. Pure truncation is exact. *)
         let n = List.length decoded in
         decoded = take n msgs && n >= expect && used >= consumed
         && (garbage > 0 || (n = expect && used = consumed))))

let test_codec_rejects_bad_crc () =
  let good = Wire.encode (Wire.Ack { ak_seq = 7 }) in
  let bad = Bytes.of_string good in
  Bytes.set bad (Bytes.length bad - 1) 'X';
  check_bool "flipped byte stops the walk" true
    (Wire.decode_prefix (Bytes.to_string bad) = ([], 0));
  let d = Wire.decoder () in
  Wire.feed d bad (Bytes.length bad);
  check_bool "live decoder raises Corrupt" true
    (match Wire.next d with
    | exception Wire.Corrupt _ -> true
    | _ -> false)

let test_codec_carries_real_dump () =
  (* a Result must carry a genuine crash dump intact: store rows are derived
     from dump fields, so dump fidelity is part of store byte-identity *)
  let r = Campaign.run (small_cfg 12) in
  match List.find_opt Option.is_some r.Campaign.dumps with
  | None -> Alcotest.fail "no crash dump in 12 stack injections (seed drift?)"
  | Some dump ->
    let msg =
      Wire.Result { rs_seq = 3; rs_index = 5; rs_entry = mk_entry 5; rs_dump = dump }
    in
    check_bool "dump survives the codec" true
      (Wire.decode_payload (Wire.encode_payload msg) = Some msg)

(* ---------- lease table ---------- *)

let test_lease_grant_and_drain () =
  let t = Lease.create ~total:7 ~chunk:3 ~timeout:10.0 ~max_deaths:2 in
  (match Lease.request t ~worker:0 ~now:0.0 with
  | Lease.Grant { d_lease = 0; d_lo = 0; d_hi = 3 } -> ()
  | _ -> Alcotest.fail "first grant should be [0,3)");
  (* a repeated request re-issues the live lease verbatim *)
  (match Lease.request t ~worker:0 ~now:0.1 with
  | Lease.Grant { d_lease = 0; d_lo = 0; d_hi = 3 } -> ()
  | _ -> Alcotest.fail "lost grant should be re-issued verbatim");
  for i = 0 to 2 do
    check_bool "fresh" true (Lease.complete t ~index:i = Lease.Fresh)
  done;
  check_bool "dup detected" true (Lease.complete t ~index:1 = Lease.Duplicate);
  check_bool "out of range is dup" true (Lease.complete t ~index:99 = Lease.Duplicate);
  (match Lease.request t ~worker:0 ~now:0.2 with
  | Lease.Grant { d_lo = 3; d_hi = 6; _ } -> ()
  | _ -> Alcotest.fail "second grant should be [3,6)");
  (match Lease.request t ~worker:1 ~now:0.2 with
  | Lease.Grant { d_lo = 6; d_hi = 7; _ } -> ()
  | _ -> Alcotest.fail "tail grant should be [6,7)");
  List.iter (fun i -> ignore (Lease.complete t ~index:i)) [ 3; 4; 5; 6 ];
  check_bool "finished" true (Lease.finished t);
  check_bool "drained" true (Lease.request t ~worker:1 ~now:0.3 = Lease.Drained)

let test_lease_steal () =
  let t = Lease.create ~total:10 ~chunk:10 ~timeout:10.0 ~max_deaths:2 in
  let lease =
    match Lease.request t ~worker:0 ~now:0.0 with
    | Lease.Grant { d_lease; d_lo = 0; d_hi = 10 } -> d_lease
    | _ -> Alcotest.fail "expected the whole plan in one lease"
  in
  (match Lease.request t ~worker:1 ~now:0.1 with
  | Lease.Steal_from { d_victim = 0; d_lease } when d_lease = lease -> ()
  | _ -> Alcotest.fail "idle worker should trigger a steal");
  (* only one steal in flight per lease *)
  check_bool "no double steal" true (Lease.request t ~worker:2 ~now:0.1 = Lease.Wait);
  (* empty return clears the flag, next idler may try again *)
  check_int "empty return requeues nothing" 0
    (Lease.steal_return t ~lease ~lo:0 ~hi:0);
  (match Lease.request t ~worker:1 ~now:0.2 with
  | Lease.Steal_from _ -> ()
  | _ -> Alcotest.fail "steal flag should have cleared");
  (* victim returns the tail [4,10): requeued, lease shrunk *)
  check_int "tail requeued" 6 (Lease.steal_return t ~lease ~lo:4 ~hi:10);
  (* a duplicated return of the same tail no longer matches and is ignored *)
  check_int "duplicate return ignored" 0 (Lease.steal_return t ~lease ~lo:4 ~hi:10);
  (match Lease.request t ~worker:1 ~now:0.3 with
  | Lease.Grant { d_lo = 4; d_hi = 10; _ } -> ()
  | _ -> Alcotest.fail "stolen tail should be re-leased");
  check_int "nothing left unleased" 0 (Lease.pending_trials t)

let test_lease_expiry_keeps_stragglers () =
  let t = Lease.create ~total:4 ~chunk:4 ~timeout:1.0 ~max_deaths:2 in
  ignore (Lease.request t ~worker:0 ~now:0.0);
  ignore (Lease.complete t ~index:0);
  check_int "no premature expiry" 0 (List.length (Lease.expire t ~now:0.5));
  (* touch pushes the deadline out *)
  Lease.touch t ~worker:0 ~now:0.9;
  check_int "touched lease survives" 0 (List.length (Lease.expire t ~now:1.5));
  let expired = Lease.expire t ~now:3.0 in
  check_int "lease expired" 1 (List.length expired);
  check_int "incomplete trials requeued" 3 (Lease.pending_trials t);
  (* the slow owner's results still land: exactly once each *)
  check_bool "straggler accepted" true (Lease.complete t ~index:1 = Lease.Fresh);
  (* and the re-leased range skips what the straggler delivered *)
  (match Lease.request t ~worker:1 ~now:3.1 with
  | Lease.Grant { d_lo = 2; d_hi = 4; _ } -> ()
  | _ -> Alcotest.fail "regrant should skip completed trials");
  check_bool "no death charged by expiry" true
    (Lease.worker_dead t ~worker:99 ~requeued:(ref []) = [])

let test_lease_death_poisons () =
  let t = Lease.create ~total:3 ~chunk:1 ~timeout:10.0 ~max_deaths:1 in
  ignore (Lease.request t ~worker:0 ~now:0.0);
  let requeued = ref [] in
  check_bool "first death only requeues" true
    (Lease.worker_dead t ~worker:0 ~requeued = []);
  check_int "trial 0 requeued" 1 (List.length !requeued);
  ignore (Lease.request t ~worker:1 ~now:0.1);
  (* chunk 1: worker 1 now holds trial 1?  No — pending is [1,3) then [0,1);
     the requeued trial goes to the back, so worker 1 leased trial 1 *)
  ignore (Lease.request t ~worker:2 ~now:0.1);
  (* worker 2 leased trial 2; next lease would be the requeued trial 0 *)
  ignore (Lease.request t ~worker:3 ~now:0.1);
  let requeued = ref [] in
  check_bool "second death poisons" true
    (Lease.worker_dead t ~worker:3 ~requeued = [ 0 ]);
  check_int "poisoned trial is not requeued" 0 (List.length !requeued);
  (* the caller quarantines and completes it *)
  check_bool "quarantine completes" true (Lease.complete t ~index:0 = Lease.Fresh);
  ignore (Lease.complete t ~index:1);
  ignore (Lease.complete t ~index:2);
  check_bool "finished" true (Lease.finished t)

(* ---------- full campaigns ---------- *)

let boots_blind t = Telemetry.with_boots t 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The store bytes a campaign result produces — tiny blocks so block framing
   is exercised too. *)
let store_bytes (r : Campaign.result) =
  let path = Filename.temp_file "ferrite_fabric" ".fstore" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let w = Store.create ~block_rows:7 path in
      Result_store.append_result w r;
      Store.close w;
      read_file path)

let check_identical label (reference : Campaign.result) (r : Campaign.result) =
  check_bool (label ^ ": records") true (r.Campaign.records = reference.Campaign.records);
  check_bool (label ^ ": collector") true
    (r.Campaign.collector = reference.Campaign.collector);
  check_bool (label ^ ": traces") true (r.Campaign.traces = reference.Campaign.traces);
  check_bool (label ^ ": dumps") true (r.Campaign.dumps = reference.Campaign.dumps);
  check_bool (label ^ ": telemetry") true
    (boots_blind r.Campaign.telemetry = boots_blind reference.Campaign.telemetry);
  check_bool (label ^ ": store bytes") true (store_bytes r = store_bytes reference)

let test_two_workers_identical () =
  let cfg = small_cfg 24 in
  let reference = Campaign.run cfg in
  let r, report = run_campaign ~workers:2 cfg in
  check_identical "2 workers" reference r;
  check_int "no deaths" 0 report.fb_worker_deaths;
  check_int "every trial merged fresh exactly once" 24 report.fb_results

(* The golden resilience drill: four workers, one SIGKILLed mid-campaign, a
   replacement joining late — the merge must not show a scar. *)
let test_kill_and_rejoin () =
  let cfg = small_cfg 80 in
  let reference = Campaign.run cfg in
  let t = Controller.create cfg in
  let first = Controller.add_worker t in
  for _ = 2 to 4 do
    ignore (Controller.add_worker t)
  done;
  (* let the campaign get going, then kill without warning *)
  let deadline = Unix.gettimeofday () +. 60.0 in
  while Controller.completed t < 4 && Unix.gettimeofday () < deadline do
    Controller.step t ~timeout:0.05
  done;
  check_bool "the campaign was mid-flight" true
    (Controller.completed t >= 4 && not (Controller.finished t));
  (match Controller.worker_pid t first with
  | Some pid -> Unix.kill pid Sys.sigkill
  | None -> Alcotest.fail "forked worker has no pid");
  let late = Controller.add_worker t in
  check_bool "replacement got a fresh id" true (late > first);
  let r, report = Controller.finish t in
  check_int "exactly one death" 1 report.fb_worker_deaths;
  check_int "nothing quarantined" 0 (List.length report.fb_quarantined);
  check_int "five workers ever joined" 5 report.fb_workers;
  check_identical "kill and rejoin" reference r

(* Seeded wire chaos: drop/duplicate/reorder a fifth of the eligible traffic
   in both directions. The campaign must converge with only the fabric's
   bookkeeping counters moved — records and store bytes exactly sequential. *)
let test_wire_chaos_converges () =
  let cfg = small_cfg 30 in
  let reference = Campaign.run cfg in
  let wire_chaos = { Wire.wc_drop = 0.2; wc_dup = 0.1; wc_reorder = 0.1 } in
  let r, report =
    run_campaign ~workers:2 ~wire_chaos ~wire_seed:0xC4A05L ~lease_timeout:1.0 cfg
  in
  check_identical "chaos" reference r;
  check_int "no deaths under pure message chaos" 0 report.fb_worker_deaths;
  check_bool "the chaos left tracks in the counters" true
    (report.fb_dup_results > 0 || report.fb_retransmitted > 0 || report.fb_expired > 0)

(* A trial that kills every worker that touches it must not kill the
   campaign: after max deaths it is quarantined exactly like an in-process
   poison trial, and every other record stays byte-identical. *)
let test_poison_trial_quarantined () =
  let poison = 5 in
  let cfg = small_cfg 12 in
  let reference = Campaign.run cfg in
  let t = Controller.create ~max_worker_deaths:1 ~chunk:1 cfg in
  ignore (Controller.add_worker ~die_at:poison t);
  ignore (Controller.add_worker ~die_at:poison t);
  let deadline = Unix.gettimeofday () +. 60.0 in
  while
    (not (Controller.finished t))
    && Controller.workers_alive t > 0
    && Unix.gettimeofday () < deadline
  do
    Controller.step t ~timeout:0.05
  done;
  (* both die-at workers are dead by now; a healthy late joiner mops up
     whatever they left (usually nothing but the already-quarantined trial) *)
  if not (Controller.finished t) then ignore (Controller.add_worker t);
  let r, report = Controller.finish t in
  check_int "two deaths" 2 report.fb_worker_deaths;
  (match report.fb_quarantined with
  | [ (i, _) ] -> check_int "the poison trial was quarantined" poison i
  | q -> Alcotest.failf "expected one quarantined trial, got %d" (List.length q));
  List.iteri
    (fun i (record : Outcome.record) ->
      let ref_record = List.nth reference.Campaign.records i in
      if i = poison then
        check_bool "poison trial is an infrastructure failure" true
          (Outcome.is_infrastructure record.Outcome.r_outcome)
      else
        check_bool (Printf.sprintf "trial %d identical" i) true (record = ref_record))
    r.Campaign.records

(* A worker that is alive but silent — SIGSTOPped, the moral equivalent of a
   spin loop — must be declared hung once the heartbeat deadline passes, its
   lease reclaimed and re-granted exactly once, and the campaign must still
   merge byte-identical. The lease timeout is set far out so only heartbeat
   detection can reclaim the work. *)
let test_hung_worker_declared_dead () =
  let cfg = small_cfg 40 in
  let reference = Campaign.run cfg in
  (* one worker holding the whole campaign as a single lease, so the wedge
     below is guaranteed to strand unfinished leased trials; the lease
     timeout is set far out so only heartbeat detection can reclaim them *)
  let t = Controller.create ~heartbeat_timeout:1.0 ~lease_timeout:120.0 ~chunk:40 cfg in
  let first = Controller.add_worker t in
  let deadline = Unix.gettimeofday () +. 60.0 in
  while Controller.completed t < 2 && Unix.gettimeofday () < deadline do
    Controller.step t ~timeout:0.05
  done;
  let pid =
    match Controller.worker_pid t first with
    | Some pid -> pid
    | None -> Alcotest.fail "forked worker has no pid"
  in
  (* wedge it: the process stays alive but heartbeats stop *)
  Unix.kill pid Sys.sigstop;
  ignore (Controller.add_worker t);
  let deadline = Unix.gettimeofday () +. 60.0 in
  while Controller.workers_alive t > 1 && Unix.gettimeofday () < deadline do
    Controller.step t ~timeout:0.05
  done;
  (* declared dead while the process still exists (reap kills it later) *)
  check_bool "the wedged process is still alive" true
    (match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ -> true
    | _ -> false
    | exception Unix.Unix_error _ -> false);
  let r, report = Controller.finish t in
  check_int "declared hung" 1 report.fb_hung;
  check_int "a hung worker is a dead worker" 1 report.fb_worker_deaths;
  check_bool "its trials were re-leased" true (report.fb_requeued > 0);
  check_int "every trial merged exactly once" 40 report.fb_results;
  check_int "no duplicates" 0 report.fb_dup_results;
  check_identical "hung worker" reference r

(* The graceful-drain golden test: SIGTERM a journalled fabric campaign
   mid-flight. The controller must exit its loop cleanly, salvage the
   completed subset, and leave a valid journal whose entries match the
   reference records — and a later --resume must finish the campaign
   byte-identical. *)
let test_sigterm_drains_to_valid_journal () =
  let cfg = small_cfg 200 in
  let reference = Campaign.run cfg in
  let path = Filename.temp_file "ferrite_drain" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      (match Unix.fork () with
      | 0 ->
        (* child: the CLI's drain loop in miniature *)
        (try
           let t = Controller.create ~journal:path cfg in
           Sys.set_signal Sys.sigterm
             (Sys.Signal_handle (fun _ -> Controller.request_drain t));
           ignore (Controller.add_worker t);
           ignore (Controller.add_worker t);
           while (not (Controller.finished t)) && not (Controller.draining t) do
             Controller.step t ~timeout:0.05
           done;
           let _r, rep = Controller.finish t in
           Unix._exit (if rep.fb_missing > 0 then 42 else 0)
         with _ -> Unix._exit 1)
      | pid ->
        (* wait for a few journalled frames, then ask for the drain *)
        let deadline = Unix.gettimeofday () +. 60.0 in
        let rec poll () =
          let sz =
            try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0
          in
          if sz <= Journal.header_size + 64 && Unix.gettimeofday () < deadline then begin
            Unix.sleepf 0.01;
            poll ()
          end
        in
        poll ();
        Unix.kill pid Sys.sigterm;
        let _, status = Unix.waitpid [] pid in
        check_bool "the drain exited cleanly" true
          (status = Unix.WEXITED 42 || status = Unix.WEXITED 0));
      (* the journal is a valid prefix bound to this plan, and every entry
         matches the reference record at its index *)
      let sv =
        {
          Campaign.sv_policy = Supervisor.default_policy;
          sv_chaos = Supervisor.no_chaos;
          sv_journal = Some path;
          sv_resume = true;
        }
      in
      let hash =
        Journal.plan_hash_of_string (Campaign.plan_fingerprint ~supervision:sv cfg)
      in
      let rc = Journal.recover ~path ~plan_hash:hash in
      check_int "no torn tail after a drain" 0 rc.Journal.rc_truncated_bytes;
      check_bool "something was salvaged" true (rc.Journal.rc_entries <> []);
      List.iter
        (fun (e : Journal.entry) ->
          check_bool
            (Printf.sprintf "salvaged entry %d matches the reference" e.Journal.je_index)
            true
            (e.Journal.je_record
            = List.nth reference.Campaign.records e.Journal.je_index))
        rc.Journal.rc_entries;
      (* and the salvage state resumes to the full campaign *)
      let r, _ = run_campaign ~workers:2 ~journal:path ~resume:true cfg in
      check_bool "resume completes the drained campaign: records" true
        (r.Campaign.records = reference.Campaign.records);
      check_bool "resume completes the drained campaign: collector" true
        (r.Campaign.collector = reference.Campaign.collector);
      check_bool "resume completes the drained campaign: telemetry" true
        (boots_blind r.Campaign.telemetry = boots_blind reference.Campaign.telemetry))

let () =
  Alcotest.run "ferrite_fabric"
    [
      ( "codec",
        [
          prop_codec_roundtrip;
          prop_torn_stream;
          Alcotest.test_case "bad crc" `Quick test_codec_rejects_bad_crc;
          Alcotest.test_case "real dump roundtrip" `Quick test_codec_carries_real_dump;
        ] );
      ( "lease",
        [
          Alcotest.test_case "grant and drain" `Quick test_lease_grant_and_drain;
          Alcotest.test_case "steal" `Quick test_lease_steal;
          Alcotest.test_case "expiry keeps stragglers" `Quick
            test_lease_expiry_keeps_stragglers;
          Alcotest.test_case "death poisons" `Quick test_lease_death_poisons;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "2 workers byte-identical" `Quick test_two_workers_identical;
          Alcotest.test_case "kill and rejoin" `Quick test_kill_and_rejoin;
          Alcotest.test_case "wire chaos converges" `Quick test_wire_chaos_converges;
          Alcotest.test_case "poison trial quarantined" `Quick
            test_poison_trial_quarantined;
          Alcotest.test_case "hung worker declared dead" `Quick
            test_hung_worker_declared_dead;
          Alcotest.test_case "sigterm drains to a valid journal" `Quick
            test_sigterm_drains_to_valid_journal;
        ] );
    ]
