(* Tests for the fault-model algebra and weighted targeting refactor:
   model spec parsing, per-model campaign smoke, targeting-policy weight
   validation, the refactor-invariance property (legacy config byte-identical
   across executors), and journal-format compatibility — a v1 (pre-refactor)
   journal must resume cleanly and reproduce the pre-refactor records
   bit for bit. *)

open Ferrite_injection
module Image = Ferrite_kir.Image
module Boot = Ferrite_kernel.Boot
module Rng = Ferrite_machine.Rng
module Tracer = Ferrite_trace.Tracer
module Event = Ferrite_trace.Event

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_temp f =
  let path = Filename.temp_file "ferrite-test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* byte-identity per element: marshaling whole lists is confounded by
   physical sharing (string literals shared across fresh trials, never
   across unmarshaled journal entries), which is invisible to consumers *)
let same_list a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> Marshal.to_string x [] = Marshal.to_string y []) a b

let copy_file src dst =
  let ic = open_in_bin src in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc data;
  close_out oc

(* ---------- the algebra: parsing, tags, validation ---------- *)

let all_models =
  [
    Fault_model.Single_bit_transient;
    Fault_model.Multi_bit { width = 2 };
    Fault_model.Multi_bit { width = 4 };
    Fault_model.Burst { span = 3 };
    Fault_model.Stuck_at { value = 0 };
    Fault_model.Stuck_at { value = 1 };
    Fault_model.Intermittent { period = 8; duty = 4; seed = 0L };
    Fault_model.Tlb_entry;
    Fault_model.Decode_cache_line;
  ]

let test_tag_roundtrip () =
  List.iter
    (fun m ->
      match Fault_model.of_string (Fault_model.tag m) with
      | Ok m' -> check_bool ("roundtrips: " ^ Fault_model.tag m) true (m = m')
      | Error e -> Alcotest.failf "tag %s does not parse back: %s" (Fault_model.tag m) e)
    all_models

let test_of_string_aliases () =
  let expect s m =
    match Fault_model.of_string s with
    | Ok m' -> check_bool ("alias " ^ s) true (m = m')
    | Error e -> Alcotest.failf "alias %s rejected: %s" s e
  in
  expect "single-bit" Fault_model.Single_bit_transient;
  expect "single" Fault_model.Single_bit_transient;
  (* the acceptance spelling: --fault-model stuck_at *)
  expect "stuck_at" (Fault_model.Stuck_at { value = 0 });
  expect "stuck_at:1" (Fault_model.Stuck_at { value = 1 });
  expect "multi_bit" (Fault_model.Multi_bit { width = 2 });
  expect "burst" (Fault_model.Burst { span = 3 });
  expect "intermittent" (Fault_model.Intermittent { period = 8; duty = 4; seed = 0L });
  expect "tlb_entry" Fault_model.Tlb_entry;
  expect "decode-line" Fault_model.Decode_cache_line;
  List.iter
    (fun s ->
      check_bool ("rejects " ^ s) true (Result.is_error (Fault_model.of_string s)))
    [ ""; "nonsense"; "multi:0"; "multi:33"; "stuck:2"; "intermittent:0:1"; "intermittent:4:9" ]

let test_validated_rejects_nonsense () =
  let raises m =
    match Fault_model.validated m with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "width 0" true (raises (Fault_model.Multi_bit { width = 0 }));
  check_bool "width 33" true (raises (Fault_model.Multi_bit { width = 33 }));
  check_bool "span 0" true (raises (Fault_model.Burst { span = 0 }));
  check_bool "value 2" true (raises (Fault_model.Stuck_at { value = 2 }));
  check_bool "period 0" true
    (raises (Fault_model.Intermittent { period = 0; duty = 1; seed = 0L }));
  check_bool "duty > period" true
    (raises (Fault_model.Intermittent { period = 4; duty = 5; seed = 0L }));
  List.iter (fun m -> check_bool "valid passes" true (Fault_model.validated m = m)) all_models

(* ---------- per-model write-hit / dormancy semantics ----------

   Drive an instance directly against a fake one-word target so the exact
   corruption semantics — what a workload overwrite leaves behind, whether a
   dormant fault blocks activation, whether a no-op apply counts — are
   pinned without a whole campaign in the way. *)

let fake_word ?(initial = 0) () =
  let word = ref initial in
  let ops =
    {
      Fault_model.o_flip = (fun _ bit -> word := !word lxor (1 lsl bit));
      o_get = (fun _ bit -> (!word lsr bit) land 1);
      o_swap_pages = (fun _ _ -> ());
      o_partner = (fun _ -> None);
      o_emit = (fun _ -> ());
    }
  in
  (word, ops)

let bit_of word b = (!word lsr b) land 1

let test_stuck_at_write_hit () =
  (* bit 5 starts at 1; stuck-at-0 forces it low and must keep it low
     whatever the workload writes — including the stuck value itself *)
  let word, ops = fake_word ~initial:(1 lsl 5) () in
  let fm = Fault_model.instantiate (Fault_model.Stuck_at { value = 0 }) ~fault_seed:1L in
  Fault_model.apply_mem fm ops ~space:Event.Data_space ~addr:0 ~bit:5 ~limit:32;
  check_int "forced low at arm" 0 (bit_of word 5);
  (* workload writes the stuck value: re-assert must NOT toggle it back up *)
  Fault_model.on_write_hit fm ops ~addr:0 ~bit:5;
  check_int "write of the stuck value stays stuck" 0 (bit_of word 5);
  (* workload writes the opposite value: re-assert forces it again *)
  word := 1 lsl 5;
  Fault_model.on_write_hit fm ops ~addr:0 ~bit:5;
  check_int "write of the opposite value re-stuck" 0 (bit_of word 5)

let test_multi_bit_write_hit () =
  (* an overwrite clobbers the whole word: every landed bit re-asserts, not
     just the primary one *)
  let word, ops = fake_word () in
  let fm = Fault_model.instantiate (Fault_model.Multi_bit { width = 3 }) ~fault_seed:7L in
  Fault_model.apply_mem fm ops ~space:Event.Data_space ~addr:0 ~bit:4 ~limit:32;
  let corrupted = !word in
  check_bool "three bits landed" true
    (corrupted land (1 lsl 4) <> 0
    && List.length (List.filter (fun b -> corrupted land (1 lsl b) <> 0) (List.init 32 Fun.id))
       = 3);
  word := 0;
  Fault_model.on_write_hit fm ops ~addr:0 ~bit:4;
  check_int "overwrite re-asserts every landed bit" corrupted !word

let test_intermittent_dormant_phase () =
  (* period 2 / duty 1 with phase 1: dormant in the arm window, asserted in
     the first tick window, restored in the second *)
  let model = Fault_model.Intermittent { period = 2; duty = 1; seed = 1L } in
  let word, ops = fake_word () in
  let fm = Fault_model.instantiate model ~fault_seed:0L in
  Fault_model.apply_mem fm ops ~space:Event.Data_space ~addr:0 ~bit:3 ~limit:32;
  check_int "dormant phase leaves the target clean" 0 !word;
  check_bool "dormant fault blocks activation" true (Fault_model.blocks_activation fm);
  Fault_model.on_write_hit fm ops ~addr:0 ~bit:3;
  check_int "dormant write hit asserts nothing" 0 !word;
  check_bool "tick asserts it" true (Fault_model.on_tick fm ops ~addr:0 ~bit:3);
  check_int "present" 1 (bit_of word 3);
  check_bool "asserted fault no longer blocks" false (Fault_model.blocks_activation fm);
  check_bool "next tick restores" false (Fault_model.on_tick fm ops ~addr:0 ~bit:3);
  check_int "clean again" 0 !word;
  (* the complementary phase is present at arm time *)
  let word2, ops2 = fake_word () in
  let fm2 = Fault_model.instantiate model ~fault_seed:1L in
  Fault_model.apply_mem fm2 ops2 ~space:Event.Data_space ~addr:0 ~bit:3 ~limit:32;
  check_int "present phase flips at arm" 1 (bit_of word2 3);
  check_bool "present fault does not block" false (Fault_model.blocks_activation fm2)

let test_apply_reg_reports_landing () =
  (* stuck-at whose bit already holds the value: nothing corrupted, no
     activation — until a tick re-forces a workload write *)
  let word, ops = fake_word ~initial:(1 lsl 3) () in
  let fm = Fault_model.instantiate (Fault_model.Stuck_at { value = 1 }) ~fault_seed:2L in
  check_bool "no-op apply reports no landing" false
    (Fault_model.apply_reg fm ops ~reg:"r3" ~index:0 ~bit:3 ~bits:32);
  check_int "register untouched" (1 lsl 3) !word;
  check_bool "clean tick is quiet" false (Fault_model.on_tick fm ops ~addr:0 ~bit:3);
  word := 0;
  check_bool "tick re-forces a cleared bit and reports it" true
    (Fault_model.on_tick fm ops ~addr:0 ~bit:3);
  check_int "re-forced" 1 (bit_of word 3);
  (* and a plain single-bit apply always lands *)
  let _, ops2 = fake_word () in
  let fm2 = Fault_model.instantiate Fault_model.Single_bit_transient ~fault_seed:2L in
  check_bool "legacy apply lands" true
    (Fault_model.apply_reg fm2 ops2 ~reg:"r3" ~index:0 ~bit:3 ~bits:32)

(* ---------- targeting-policy weight validation ---------- *)

let test_generate_validates_weights () =
  let sys = Boot.boot Image.Cisc in
  let hot = [ ("kmemcpy", 0.4); ("schedule", 0.3); ("getblk", 0.3) ] in
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  let rng () = Rng.create ~seed:55L in
  check_bool "empty hot distribution" true
    (raises (fun () -> Target.generate sys Target.Code ~hot:[] (rng ())));
  check_bool "negative weight" true
    (raises (fun () ->
         Target.generate sys Target.Code ~hot:[ ("schedule", -1.0) ] (rng ())));
  check_bool "zero weight" true
    (raises (fun () ->
         Target.generate sys Target.Code ~hot:[ ("schedule", 0.0) ] (rng ())));
  check_bool "nan weight" true
    (raises (fun () ->
         Target.generate sys Target.Code ~hot:[ ("schedule", Float.nan) ] (rng ())));
  check_bool "empty density table" true
    (raises (fun () ->
         Target.generate sys Target.Data ~targeting:(Target.Density_weighted []) ~hot
           (rng ())));
  check_bool "bad density weight" true
    (raises (fun () ->
         Target.generate sys Target.Data
           ~targeting:(Target.Density_weighted [ ("fs", -2.0) ])
           ~hot (rng ())));
  (* the validation consumes no randomness: a draw after a rejected call
     equals the draw from a fresh stream *)
  let r = rng () in
  (try ignore (Target.generate sys Target.Code ~hot:[] r) with Invalid_argument _ -> ());
  let after_reject = Target.generate sys Target.Code ~hot r in
  let fresh = Target.generate sys Target.Code ~hot (rng ()) in
  check_bool "rejected call left the stream untouched" true (after_reject = fresh)

let test_targeting_tags () =
  (* uniform/profile tags parse back; the density tag spells out its table
     (it feeds the plan fingerprint), so only the plain name is accepted *)
  List.iter
    (fun t ->
      match Target.targeting_of_string (Target.targeting_tag t) with
      | Ok t' ->
        check_string "targeting roundtrip" (Target.targeting_tag t) (Target.targeting_tag t')
      | Error e -> Alcotest.failf "targeting tag rejected: %s" e)
    [ Target.Uniform; Target.Profile_weighted ];
  (match Target.targeting_of_string "density" with
  | Ok (Target.Density_weighted table) ->
    check_bool "density parses to the default table" true (table = Target.default_density)
  | Ok _ -> Alcotest.fail "density parsed to a non-density policy"
  | Error e -> Alcotest.failf "density rejected: %s" e);
  check_bool "density tag names its table" true
    (String.length (Target.targeting_tag (Target.Density_weighted Target.default_density)) > 8);
  check_bool "unknown policy rejected" true
    (Result.is_error (Target.targeting_of_string "everywhere"))

(* ---------- per-model campaign smoke ---------- *)

let test_models_run_and_tag_records () =
  List.iter
    (fun (kind, model) ->
      let cfg =
        {
          (Campaign.default ~arch:Image.Cisc ~kind ~injections:3) with
          Campaign.seed = 0x90DEL;
          fault_model = model;
        }
      in
      let res = Campaign.run cfg in
      check_int
        (Printf.sprintf "%s: all trials ran" (Fault_model.tag model))
        3
        (List.length res.Campaign.records);
      List.iter
        (fun r ->
          check_bool "record carries the model" true (r.Outcome.r_model = model))
        res.Campaign.records;
      match Campaign.group_by_model res with
      | [ (tag, records) ] ->
        check_string "single bucket, right tag" (Fault_model.tag model) tag;
        check_int "bucket holds every record" 3 (List.length records)
      | groups -> Alcotest.failf "expected one model bucket, got %d" (List.length groups))
    [
      (Target.Stack, Fault_model.Multi_bit { width = 2 });
      (Target.Stack, Fault_model.Burst { span = 3 });
      (Target.Stack, Fault_model.Stuck_at { value = 1 });
      (Target.Stack, Fault_model.Intermittent { period = 8; duty = 4; seed = 0L });
      (Target.Data, Fault_model.Tlb_entry);
      (Target.Code, Fault_model.Decode_cache_line);
      (Target.Register, Fault_model.Stuck_at { value = 0 });
      (Target.Register, Fault_model.Tlb_entry);
    ]

let test_targeting_policies_run () =
  List.iter
    (fun kind ->
      List.iter
        (fun targeting ->
          let cfg =
            {
              (Campaign.default ~arch:Image.Risc ~kind ~injections:3) with
              Campaign.seed = 0x7A6L;
              targeting;
            }
          in
          let res = Campaign.run cfg in
          check_int
            (Printf.sprintf "%s/%s ran" (Target.targeting_tag targeting)
               (match kind with
               | Target.Stack -> "stack"
               | Target.Data -> "data"
               | Target.Code -> "code"
               | Target.Register -> "register"))
            3
            (List.length res.Campaign.records))
        [ Target.Profile_weighted; Target.Density_weighted Target.default_density ])
    [ Target.Stack; Target.Data; Target.Code; Target.Register ]

(* ---------- refactor invariance (satellite: the qcheck property) ---------- *)

(* The legacy configuration (Single_bit_transient, Uniform) must produce
   byte-identical campaigns — records, collector stats, traces, telemetry —
   whatever the executor: the refactored engine may not perturb the paper's
   runs. Seeds/kind/arch are drawn by qcheck. *)
let prop_refactor_invariance =
  let arb =
    QCheck.(
      triple (int_bound 0xFFFF) (int_bound 3) bool)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"legacy config is executor-invariant" ~count:4 arb
       (fun (seed, kind_ix, cisc) ->
         let kind =
           [| Target.Stack; Target.Data; Target.Code; Target.Register |].(kind_ix)
         in
         let arch = if cisc then Image.Cisc else Image.Risc in
         let cfg =
           {
             (Campaign.default ~arch ~kind ~injections:6) with
             Campaign.seed = Int64.of_int (0x1000 + seed);
           }
         in
         check_bool "legacy model in default config" true
           (cfg.Campaign.fault_model = Fault_model.Single_bit_transient
           && cfg.Campaign.targeting = Target.Uniform);
         let view (r : Campaign.result) =
           Marshal.to_string
             (r.Campaign.records, r.Campaign.collector, r.Campaign.traces,
              Ferrite_trace.Telemetry.with_boots r.Campaign.telemetry 0)
             []
         in
         let run jobs =
           view (Campaign.run ~executor:(Executor.of_jobs jobs) ~tracer:Tracer.default_config cfg)
         in
         let j1 = run 1 in
         j1 = run 2 && j1 = run 4))

let test_model_campaign_executor_invariant () =
  (* same invariance for a non-legacy cell: the per-trial fault stream is in
     the spec, so parallel execution cannot reorder its draws *)
  let cfg =
    {
      (Campaign.default ~arch:Image.Cisc ~kind:Target.Stack ~injections:8) with
      Campaign.seed = 0x5EEDL;
      fault_model = Fault_model.Stuck_at { value = 1 };
      targeting = Target.Profile_weighted;
    }
  in
  let rs = Campaign.run cfg in
  let rp = Campaign.run ~executor:(Executor.of_jobs 3) cfg in
  check_bool "records identical" true (rs.Campaign.records = rp.Campaign.records);
  check_bool "collector identical" true (rs.Campaign.collector = rp.Campaign.collector)

(* ---------- journal-format compatibility ---------- *)

let golden_cfg ~arch ~kind =
  { (Campaign.default ~arch ~kind ~injections:12) with Campaign.seed = 0x600DL }

let golden_supervision = { Campaign.default_supervision with Campaign.sv_journal = None }

let golden_hash ~sv cfg =
  Journal.plan_hash_of_string (Campaign.plan_fingerprint ~supervision:sv cfg)

(* The goldens under test/golden were written by the pre-refactor injector:
   recovering them exercises the v1 decode path, and resuming them against
   the refactored engine proves the legacy config reproduces the
   pre-refactor records bit for bit. The fixtures are copied first because
   [open_for_append] migrates a v1 file to v2 in place. *)
let v1_golden_cases =
  [
    ("golden/v1-p4-stack.journal", Image.Cisc, Target.Stack);
    ("golden/v1-g4-code.journal", Image.Risc, Target.Code);
  ]

let test_v1_recover () =
  List.iter
    (fun (path, arch, kind) ->
      let cfg = golden_cfg ~arch ~kind in
      let sv = { golden_supervision with Campaign.sv_journal = Some path } in
      let rc = Journal.recover ~path ~plan_hash:(golden_hash ~sv cfg) in
      check_int (path ^ ": v1 format detected") 1 rc.Journal.rc_format;
      check_int (path ^ ": all trials recovered") 12 (List.length rc.Journal.rc_entries);
      check_int (path ^ ": no torn tail") 0 rc.Journal.rc_truncated_bytes;
      List.iteri
        (fun i e ->
          check_int "entries in order" i e.Journal.je_index;
          check_bool "upgraded to the legacy model" true
            (e.Journal.je_record.Outcome.r_model = Fault_model.Single_bit_transient))
        rc.Journal.rc_entries)
    v1_golden_cases

let test_v1_resume_matches_fresh_run () =
  List.iter
    (fun (path, arch, kind) ->
      with_temp (fun tmp ->
          copy_file path tmp;
          let cfg = golden_cfg ~arch ~kind in
          let resumed =
            Campaign.run ~tracer:Tracer.default_config
              ~supervision:
                {
                  golden_supervision with
                  Campaign.sv_journal = Some tmp;
                  sv_resume = true;
                }
              cfg
          in
          (match resumed.Campaign.supervision with
          | Some sup -> check_int (path ^ ": served from journal") 12 sup.Supervisor.sup_resume_skips
          | None -> Alcotest.fail "supervised run lost its report");
          let fresh = Campaign.run ~tracer:Tracer.default_config ~supervision:golden_supervision cfg in
          check_bool (path ^ ": records match the pre-refactor run") true
            (same_list resumed.Campaign.records fresh.Campaign.records);
          check_bool (path ^ ": collector stats match") true
            (resumed.Campaign.collector = fresh.Campaign.collector);
          check_bool (path ^ ": traces match") true
            (same_list resumed.Campaign.traces fresh.Campaign.traces);
          (* the resume migrated the file: a second recovery sees v2 with the
             same entries *)
          let sv = { golden_supervision with Campaign.sv_journal = Some tmp } in
          let rc = Journal.recover ~path:tmp ~plan_hash:(golden_hash ~sv cfg) in
          check_int (path ^ ": migrated to v2") 2 rc.Journal.rc_format;
          check_int (path ^ ": entries preserved") 12 (List.length rc.Journal.rc_entries)))
    v1_golden_cases

let test_v1_interrupted_resume () =
  (* resume a v1 journal holding only a prefix of the campaign: the missing
     trials are re-run by the refactored engine, and the merged result still
     equals an uninterrupted run *)
  let path, arch, kind = List.hd v1_golden_cases in
  with_temp (fun tmp ->
      copy_file path tmp;
      let cfg = golden_cfg ~arch ~kind in
      let sv = { golden_supervision with Campaign.sv_journal = Some tmp } in
      let rc = Journal.recover ~path:tmp ~plan_hash:(golden_hash ~sv cfg) in
      (* keep the first 5 frames: truncate at the 5th entry's end offset by
         re-writing the file through the migrating writer, then cutting *)
      check_bool "fixture has enough frames" true (List.length rc.Journal.rc_entries > 5);
      let writer, _ = Journal.open_for_append ~path:tmp ~plan_hash:(golden_hash ~sv cfg) in
      Journal.close writer;
      (* now v2: locate the end of frame 5 by recovering and re-framing *)
      let rc2 = Journal.recover ~path:tmp ~plan_hash:(golden_hash ~sv cfg) in
      check_int "migration kept the entries" 12 (List.length rc2.Journal.rc_entries);
      let keep = 5 in
      let tmp2 = tmp ^ ".prefix" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp2 with Sys_error _ -> ())
        (fun () ->
          let writer, _ =
            Journal.open_for_append ~path:tmp2 ~plan_hash:(golden_hash ~sv cfg)
          in
          List.iteri
            (fun i e -> if i < keep then Journal.append writer e)
            rc2.Journal.rc_entries;
          Journal.close writer;
          let resumed =
            Campaign.run ~tracer:Tracer.default_config
              ~supervision:
                {
                  golden_supervision with
                  Campaign.sv_journal = Some tmp2;
                  sv_resume = true;
                }
              cfg
          in
          (match resumed.Campaign.supervision with
          | Some sup -> check_int "prefix served from journal" keep sup.Supervisor.sup_resume_skips
          | None -> Alcotest.fail "supervised run lost its report");
          let fresh =
            Campaign.run ~tracer:Tracer.default_config ~supervision:golden_supervision cfg
          in
          check_bool "merged records equal the uninterrupted run" true
            (same_list resumed.Campaign.records fresh.Campaign.records);
          check_bool "merged traces equal the uninterrupted run" true
            (same_list resumed.Campaign.traces fresh.Campaign.traces)))

let test_mixed_model_journal_roundtrip () =
  (* a journal whose entries carry different fault models (as a matrix sweep
     writes) survives append/recover/append cycles with the model tags intact *)
  let stamp = { Event.s_cycles = 0; s_instructions = 0; s_pc = 0; s_function = None } in
  let mk_entry i model =
    let tracer = Tracer.create Tracer.default_config in
    Tracer.record tracer stamp (Event.Trial_begin { trial = i; target = "t" });
    {
      Journal.je_index = i;
      je_record =
        {
          Outcome.r_target = Target.Data_target { addr = 4 * i; bit = i mod 8 };
          r_outcome = Outcome.Not_manifested;
          r_activated = true;
          r_activation_cycle = Some i;
          r_model = model;
        };
      je_stats =
        {
          Collector.st_received = 1;
          st_lost = 0;
          st_retransmitted = 0;
          st_gave_up = 0;
          st_dup_dropped = 0;
          st_by_model = [ (Fault_model.tag model, 1) ];
        };
      je_trace = Tracer.trial_of tracer ~index:i ~target:"t" ~outcome:"ok";
    }
  in
  let models = Array.of_list all_models in
  let entries = List.init (Array.length models) (fun i -> mk_entry i models.(i)) in
  with_temp (fun path ->
      Sys.remove path;
      let hash = 0x4D17EDL in
      let writer, _ = Journal.open_for_append ~path ~plan_hash:hash in
      List.iter (Journal.append writer) (List.filteri (fun i _ -> i < 5) entries);
      Journal.close writer;
      let writer, rc = Journal.open_for_append ~path ~plan_hash:hash in
      check_int "first batch recovered" 5 (List.length rc.Journal.rc_entries);
      List.iter (Journal.append writer) (List.filteri (fun i _ -> i >= 5) entries);
      Journal.close writer;
      let rc = Journal.recover ~path ~plan_hash:hash in
      check_int "v2 format" 2 rc.Journal.rc_format;
      check_int "every entry back" (List.length entries) (List.length rc.Journal.rc_entries);
      List.iter2
        (fun a b ->
          check_bool "model tag survived" true
            (a.Journal.je_record.Outcome.r_model = b.Journal.je_record.Outcome.r_model);
          check_bool "entry roundtrips byte-exactly" true
            (Marshal.to_string a [] = Marshal.to_string b []))
        entries rc.Journal.rc_entries)

(* ---------- the per-model report breakout ---------- *)

let test_model_breakout_renders () =
  let cfg =
    {
      (Campaign.default ~arch:Image.Cisc ~kind:Target.Stack ~injections:5) with
      Campaign.seed = 0xB0DEL;
      fault_model = Fault_model.Stuck_at { value = 0 };
      targeting = Target.Profile_weighted;
    }
  in
  let res = Campaign.run cfg in
  let text = Ferrite.Report.model_breakout res in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "breakout names the model" true (contains text "stuck:0");
  check_bool "breakout carries the Table 5/6 columns" true (contains text "Known Crash")

let () =
  Alcotest.run "ferrite_fault_model"
    [
      ( "algebra",
        [
          Alcotest.test_case "tag roundtrip" `Quick test_tag_roundtrip;
          Alcotest.test_case "of_string aliases" `Quick test_of_string_aliases;
          Alcotest.test_case "validated rejects nonsense" `Quick test_validated_rejects_nonsense;
        ] );
      ( "model semantics",
        [
          Alcotest.test_case "stuck-at write hit" `Quick test_stuck_at_write_hit;
          Alcotest.test_case "multi-bit write hit" `Quick test_multi_bit_write_hit;
          Alcotest.test_case "intermittent dormant phase" `Quick test_intermittent_dormant_phase;
          Alcotest.test_case "apply_reg reports landing" `Quick test_apply_reg_reports_landing;
        ] );
      ( "targeting",
        [
          Alcotest.test_case "generate validates weights" `Quick test_generate_validates_weights;
          Alcotest.test_case "policy tags" `Quick test_targeting_tags;
          Alcotest.test_case "policies run" `Quick test_targeting_policies_run;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "models run and tag records" `Quick test_models_run_and_tag_records;
          prop_refactor_invariance;
          Alcotest.test_case "model campaign executor-invariant" `Quick
            test_model_campaign_executor_invariant;
          Alcotest.test_case "breakout renders" `Quick test_model_breakout_renders;
        ] );
      ( "journal compat",
        [
          Alcotest.test_case "v1 golden recovers" `Quick test_v1_recover;
          Alcotest.test_case "v1 golden resumes bit-identically" `Quick
            test_v1_resume_matches_fresh_run;
          Alcotest.test_case "v1 prefix resume" `Quick test_v1_interrupted_resume;
          Alcotest.test_case "mixed-model journal roundtrip" `Quick
            test_mixed_model_journal_roundtrip;
        ] );
    ]
