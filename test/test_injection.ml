(* Tests for the injection framework: target generation, the NFTAPE
   breakpoint mechanics of section 3.3, crash-cause classification
   (Tables 3/4), the collector, and campaign determinism. *)

open Ferrite_kernel
open Ferrite_injection
module Image = Ferrite_kir.Image
module Rng = Ferrite_machine.Rng
module Workload = Ferrite_workload.Workload
module Runner = Ferrite_workload.Runner

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let hot = [ ("kmemcpy", 0.5); ("schedule", 0.3); ("getblk", 0.2) ]

(* ---------- target generation ---------- *)

let test_code_targets_within_functions () =
  List.iter
    (fun arch ->
      let sys = Boot.boot arch in
      let rng = Rng.create ~seed:1L in
      for _ = 1 to 100 do
        match Target.generate sys Target.Code ~hot rng with
        | Target.Code_target { fn; addr; bit } ->
          let f = Image.find_func sys.System.image fn in
          check_bool "address inside function" true
            (addr >= f.Image.fs_addr && addr < f.Image.fs_addr + f.Image.fs_size);
          check_bool "bit sane" true (bit >= 0 && bit < 8 * 15);
          if arch = Image.Risc then check_int "word aligned" 0 (addr land 3)
        | _ -> Alcotest.fail "wrong target kind"
      done)
    [ Image.Cisc; Image.Risc ]

let test_stack_targets_within_stacks () =
  let sys = Boot.boot Image.Cisc in
  let rng = Rng.create ~seed:2L in
  for _ = 1 to 200 do
    match Target.generate sys Target.Stack ~hot rng with
    | Target.Stack_target { task; addr; bit } ->
      let lo, hi = System.task_stack_range sys task in
      check_bool "in stack" true (addr >= lo && addr < hi);
      check_int "word aligned" 0 (addr land 3);
      check_bool "bit 0-31" true (bit >= 0 && bit < 32)
    | _ -> Alcotest.fail "wrong target kind"
  done

let test_data_targets_exclude_user_regions () =
  let sys = Boot.boot Image.Risc in
  let rng = Rng.create ~seed:3L in
  let forbidden =
    List.map
      (fun name ->
        let a = System.symbol sys name in
        (a, a + 20_000))
      [ "mailbox"; "user_buffers"; "disk" ]
  in
  ignore forbidden;
  let ds = sys.System.image.Image.img_data in
  for _ = 1 to 300 do
    match Target.generate sys Target.Data ~hot rng with
    | Target.Data_target { addr; _ } ->
      check_bool "inside data section" true
        (addr >= ds.Ferrite_kir.Layout.ds_base
        && addr < ds.Ferrite_kir.Layout.ds_base + ds.Ferrite_kir.Layout.ds_size);
      List.iter
        (fun name ->
          let g = Ferrite_kir.Layout.find_global ds name in
          check_bool (name ^ " excluded") false
            (addr >= g.Ferrite_kir.Layout.pg_addr
            && addr < g.Ferrite_kir.Layout.pg_addr + g.Ferrite_kir.Layout.pg_size))
        [ "mailbox"; "user_buffers"; "disk" ]
    | _ -> Alcotest.fail "wrong target kind"
  done

let test_register_targets () =
  List.iter
    (fun (arch, expected_regs) ->
      let sys = Boot.boot arch in
      let rng = Rng.create ~seed:4L in
      let regs = System.system_registers sys in
      check_int "register roster size" expected_regs (Array.length regs);
      for _ = 1 to 100 do
        match Target.generate sys Target.Register ~hot rng with
        | Target.Reg_target { index; bit; name; _ } ->
          check_bool "index valid" true (index >= 0 && index < Array.length regs);
          check_bool "bit within width" true (bit < regs.(index).System.bits);
          check_bool "name matches" true (name = regs.(index).System.name)
        | _ -> Alcotest.fail "wrong target kind"
      done)
    [ (Image.Cisc, 23); (Image.Risc, 99) ]

(* ---------- engine mechanics ---------- *)

let engine_cfg = Engine.default_config

let run_target arch target ~seed =
  let sys = Boot.boot arch in
  let rng = Rng.create ~seed in
  let wl = Workload.mix ~ops:12 () in
  let runner = Runner.create sys ~ops:(wl.Workload.wl_ops rng) in
  let collector = Collector.create ~loss_rate:0.0 ~seed:9L () in
  (sys, Engine.run_one ~sys ~runner ~target ~collector engine_cfg)

let test_cold_data_not_activated_and_restored () =
  (* a flip in boot_command_line is never touched by the workload: it must
     come back as Not Activated and the byte must be restored *)
  let sys = Boot.boot Image.Cisc in
  let addr = System.symbol sys "boot_command_line" + 512 in
  let before = System.peek32 sys addr in
  let rng = Rng.create ~seed:5L in
  let wl = Workload.mix ~ops:10 () in
  let runner = Runner.create sys ~ops:(wl.Workload.wl_ops rng) in
  let collector = Collector.create ~loss_rate:0.0 ~seed:9L () in
  let target = Target.Data_target { addr; bit = 13 } in
  let record = Engine.run_one ~sys ~runner ~target ~collector engine_cfg in
  check_bool "not activated" true (record.Outcome.r_outcome = Outcome.Not_activated);
  check_bool "not marked activated" false record.Outcome.r_activated;
  check_int "original value restored" before (System.peek32 sys addr)

let test_hot_data_activates () =
  (* jiffies is read constantly: the watchpoint must fire *)
  let sys = Boot.boot Image.Cisc in
  let addr = System.symbol sys "jiffies" in
  let rng = Rng.create ~seed:6L in
  let wl = Workload.mix ~ops:10 () in
  let runner = Runner.create sys ~ops:(wl.Workload.wl_ops rng) in
  let collector = Collector.create ~loss_rate:0.0 ~seed:9L () in
  (* bit 1: a tiny jiffies perturbation, very unlikely to crash *)
  let target = Target.Data_target { addr; bit = 1 } in
  let record = Engine.run_one ~sys ~runner ~target ~collector engine_cfg in
  check_bool "activated" true record.Outcome.r_activated

let test_register_injection_always_activates () =
  let _, record =
    run_target Image.Risc
      (Target.Reg_target { index = 0; name = "MSR"; bit = 27; at_instr = 1_500 })
      ~seed:7L
  in
  check_bool "register runs count as activated" true record.Outcome.r_activated

let test_code_injection_crash_has_latency () =
  (* corrupt the hottest function's first instruction: expect activation and,
     usually, a crash with a positive latency *)
  let sys = Boot.boot Image.Cisc in
  let f = Image.find_func sys.System.image "kmemcpy" in
  let rng = Rng.create ~seed:8L in
  let wl = Workload.mix ~ops:12 () in
  let runner = Runner.create sys ~ops:(wl.Workload.wl_ops rng) in
  let collector = Collector.create ~loss_rate:0.0 ~seed:9L () in
  let target = Target.Code_target { fn = "kmemcpy"; addr = f.Image.fs_addr; bit = 2 } in
  let record = Engine.run_one ~sys ~runner ~target ~collector engine_cfg in
  check_bool "activated" true record.Outcome.r_activated;
  (match record.Outcome.r_outcome with
  | Outcome.Known_crash { ci_latency; _ } -> check_bool "positive latency" true (ci_latency > 0)
  | _ -> ())

let test_stuck_lock_becomes_hang () =
  (* corrupting the buffer_lock's locked byte makes the next file syscall
     spin forever: the watchdog must report Hang *)
  let sys = Boot.boot Image.Cisc in
  let lock = System.symbol sys "buffer_lock" in
  let sl =
    Ferrite_kir.Layout.layout_struct sys.System.image.Ferrite_kir.Image.img_mode
      Abi.spinlock_struct
  in
  let off = (Ferrite_kir.Layout.field_of sl "locked").Ferrite_kir.Layout.fl_offset in
  (* the locked byte lives in the word at (lock+off) & ~3; pick its bit *)
  let word = (lock + off) land lnot 3 in
  let bit = ((lock + off) - word) * 8 in
  let file_op =
    {
      Ferrite_workload.Workload.op_worker = 0;
      op_think = 0;
      op_issue = (fun sys -> (Abi.sys_open, 0, 0, 0, 0) |> fun r -> ignore sys; r);
      op_check = (fun _ _ -> true);
    }
  in
  let write_op =
    {
      Ferrite_workload.Workload.op_worker = 0;
      op_think = 0;
      op_issue =
        (fun sys ->
          (Abi.sys_write, 0, System.symbol sys "user_buffers", 64, 0));
      op_check = (fun _ _ -> true);
    }
  in
  let runner = Runner.create sys ~ops:[ file_op; write_op ] in
  let collector = Collector.create ~loss_rate:0.0 ~seed:9L () in
  let target = Target.Data_target { addr = word; bit } in
  let cfg = { Engine.default_config with Engine.step_budget = 400_000 } in
  let record = Engine.run_one ~sys ~runner ~target ~collector cfg in
  (match record.Outcome.r_outcome with
  | Outcome.Hang -> ()
  | o -> Alcotest.failf "expected Hang, got %s" (Outcome.outcome_label o))

let test_code_flip_bit_symmetry () =
  (* flip_code_bit must use the same arch-aware byte addressing as
     flip_word_bit: "bit b" is the instruction word's bit b on BOTH
     architectures. Read the word back through the arch's own byte order
     (System.peek32) and demand the flip changed exactly that bit. *)
  List.iter
    (fun arch ->
      let sys = Boot.boot arch in
      let f = Image.find_func sys.System.image "kmemcpy" in
      let addr = f.Image.fs_addr in
      List.iter
        (fun bit ->
          let before = System.peek32 sys addr in
          Engine.flip_code_bit sys addr bit;
          let after = System.peek32 sys addr in
          check_int
            (Printf.sprintf "%s bit %d flips exactly that word bit"
               (match arch with Image.Cisc -> "cisc" | Image.Risc -> "risc")
               bit)
            (before lxor (1 lsl bit))
            after;
          Engine.flip_code_bit sys addr bit;
          check_int "flip is an involution" before (System.peek32 sys addr))
        [ 0; 1; 7; 8; 14; 21; 27; 31 ])
    [ Image.Cisc; Image.Risc ]

let test_unactivated_crash_latency () =
  (* a crash with NO activated error (here: the kernel text is corrupted
     behind the injector's back, the armed data target stays cold) must
     report its latency from fault delivery — exactly the stage-3 handler
     cost — not from whatever the cycle counter reads after handler idling *)
  let sys = Boot.boot Image.Cisc in
  let f = Image.find_func sys.System.image "kmemcpy" in
  (* ud2a at the hot function's entry: the first call faults #UD *)
  System.poke8 sys f.Image.fs_addr 0x0F;
  System.poke8 sys (f.Image.fs_addr + 1) 0x0B;
  let cold = System.symbol sys "boot_command_line" + 512 in
  let rng = Rng.create ~seed:5L in
  let wl = Workload.mix ~ops:10 () in
  let runner = Runner.create sys ~ops:(wl.Workload.wl_ops rng) in
  let collector = Collector.create ~loss_rate:0.0 ~seed:9L () in
  let target = Target.Data_target { addr = cold; bit = 13 } in
  let record = Engine.run_one ~sys ~runner ~target ~collector engine_cfg in
  match record.Outcome.r_outcome with
  | Outcome.Known_crash { ci_latency; _ } ->
    check_int "latency is exactly the handler cost"
      engine_cfg.Engine.handler_cycles_cisc ci_latency
  | o -> Alcotest.failf "expected a crash, got %s" (Outcome.outcome_label o)

let test_register_injection_exact_instant =
  (* the register flip must land at exactly [at_instr], for ANY tick
     interval: the poll lives on the per-step path, not the tick path *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"register flip lands exactly at at_instr" ~count:25
       QCheck.(pair (int_range 100 3000) (int_range 0 10))
       (fun (delta, tick_pow) ->
         let sys = Boot.boot Image.Cisc in
         let n0 = (System.counters sys).Ferrite_machine.Counters.instructions in
         let at_instr = n0 + delta in
         let rng = Rng.create ~seed:11L in
         let wl = Workload.mix ~ops:12 () in
         let runner = Runner.create sys ~ops:(wl.Workload.wl_ops rng) in
         let collector = Collector.create ~loss_rate:0.0 ~seed:9L () in
         let target = Target.Reg_target { index = 0; name = "sysreg0"; bit = 3; at_instr } in
         let tracer = Ferrite_trace.Tracer.create Ferrite_trace.Tracer.default_config in
         let cfg = { engine_cfg with Engine.tick_interval = 1 lsl tick_pow } in
         let _record = Engine.run_one ~tracer ~sys ~runner ~target ~collector cfg in
         let flip_instr =
           List.find_map
             (fun (stamp, ev) ->
               match ev with
               | Ferrite_trace.Event.Reg_flip _ -> Some stamp.Ferrite_trace.Event.s_instructions
               | _ -> None)
             (Ferrite_trace.Tracer.events tracer)
         in
         flip_instr = Some at_instr))

let test_config_validation () =
  let c = Engine.validated { Engine.default_config with Engine.tick_interval = 100 } in
  check_int "tick rounded up to power of two" 128 c.Engine.tick_interval;
  check_bool "power of two untouched" true
    (Engine.validated Engine.default_config = Engine.default_config);
  (match Engine.validated { Engine.default_config with Engine.tick_interval = 0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "tick_interval 0 must be rejected");
  match Engine.validated { Engine.default_config with Engine.step_budget = -1 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative step_budget must be rejected"

let test_unactivated_hang_restores () =
  (* a workload that wedges itself (stuck buffer_lock poked by the op itself)
     exhausts the watchdog without ever touching the cold data target: the run
     is a Hang, not activated, and the flipped bit must still be restored *)
  let sys = Boot.boot Image.Cisc in
  let addr = System.symbol sys "boot_command_line" + 512 in
  let before = System.peek32 sys addr in
  let lock = System.symbol sys "buffer_lock" in
  let sl =
    Ferrite_kir.Layout.layout_struct sys.System.image.Ferrite_kir.Image.img_mode
      Abi.spinlock_struct
  in
  let off = (Ferrite_kir.Layout.field_of sl "locked").Ferrite_kir.Layout.fl_offset in
  let open_op =
    {
      Ferrite_workload.Workload.op_worker = 0;
      op_think = 0;
      op_issue = (fun _ -> (Abi.sys_open, 0, 0, 0, 0));
      op_check = (fun _ _ -> true);
    }
  in
  let wedge_op =
    {
      Ferrite_workload.Workload.op_worker = 0;
      op_think = 0;
      op_issue =
        (fun sys ->
          System.poke8 sys (lock + off) 1;
          (Abi.sys_write, 0, System.symbol sys "user_buffers", 64, 0));
      op_check = (fun _ _ -> true);
    }
  in
  let runner = Runner.create sys ~ops:[ open_op; wedge_op ] in
  let collector = Collector.create ~loss_rate:0.0 ~seed:9L () in
  let target = Target.Data_target { addr; bit = 13 } in
  let cfg = { Engine.default_config with Engine.step_budget = 100_000 } in
  let record = Engine.run_one ~sys ~runner ~target ~collector cfg in
  check_bool "watchdog fired" true (record.Outcome.r_outcome = Outcome.Hang);
  check_bool "never activated" false record.Outcome.r_activated;
  check_int "original value restored" before (System.peek32 sys addr)

(* ---------- classification ---------- *)

let test_classify_p4 () =
  let sys = Boot.boot Image.Cisc in
  let cases =
    [
      (Ferrite_cisc.Exn.Page_fault { addr = 0x8; write = false; fetch = false },
       Crash_cause.P4 Crash_cause.Null_pointer);
      (Ferrite_cisc.Exn.Page_fault { addr = 0xDEAD0000; write = true; fetch = false },
       Crash_cause.P4 Crash_cause.Bad_paging);
      (Ferrite_cisc.Exn.Invalid_opcode, Crash_cause.P4 Crash_cause.Invalid_instruction);
      (Ferrite_cisc.Exn.General_protection { addr = None },
       Crash_cause.P4 Crash_cause.General_protection);
      (Ferrite_cisc.Exn.Invalid_tss, Crash_cause.P4 Crash_cause.Invalid_tss);
      (Ferrite_cisc.Exn.Divide_error, Crash_cause.P4 Crash_cause.Divide_error);
      (Ferrite_cisc.Exn.Bounds, Crash_cause.P4 Crash_cause.Bounds_trap);
    ]
  in
  List.iter
    (fun (e, expected) ->
      match Crash_cause.classify sys (System.Cisc_fault e) with
      | Some c -> check_bool (Crash_cause.label expected) true (c = expected)
      | None -> Alcotest.fail "unexpected None")
    cases;
  check_bool "double fault gives no dump" true
    (Crash_cause.classify sys (System.Cisc_fault Ferrite_cisc.Exn.Double_fault) = None)

let test_classify_p4_panic_flag () =
  let sys = Boot.boot Image.Cisc in
  System.set_global sys "panic_code" 3;
  (match Crash_cause.classify sys (System.Cisc_fault Ferrite_cisc.Exn.Invalid_opcode) with
  | Some (Crash_cause.P4 Crash_cause.Kernel_panic) -> ()
  | _ -> Alcotest.fail "panic code must reclassify ud2 as Kernel Panic");
  System.set_global sys "panic_code" 0

let test_classify_g4 () =
  let sys = Boot.boot Image.Risc in
  let cases =
    [
      (Ferrite_risc.Exn.Dsi { addr = 0x4C; write = false; protection = false },
       Crash_cause.G4 Crash_cause.Bad_area);
      (Ferrite_risc.Exn.Dsi { addr = 0xC0100000; write = true; protection = true },
       Crash_cause.G4 Crash_cause.Bus_error);
      (Ferrite_risc.Exn.Isi { addr = 0x10 }, Crash_cause.G4 Crash_cause.Bad_area);
      (Ferrite_risc.Exn.Program_illegal, Crash_cause.G4 Crash_cause.Illegal_instruction);
      (Ferrite_risc.Exn.Program_trap, Crash_cause.G4 Crash_cause.Panic);
      (Ferrite_risc.Exn.Alignment { addr = 3 }, Crash_cause.G4 Crash_cause.Alignment);
      (Ferrite_risc.Exn.Machine_check { addr = None }, Crash_cause.G4 Crash_cause.Machine_check);
      (Ferrite_risc.Exn.Program_privileged, Crash_cause.G4 Crash_cause.Bad_trap);
      (Ferrite_risc.Exn.Unexpected_syscall, Crash_cause.G4 Crash_cause.Bad_trap);
    ]
  in
  List.iter
    (fun (e, expected) ->
      match Crash_cause.classify sys (System.Risc_fault e) with
      | Some c -> check_bool (Crash_cause.label expected) true (c = expected)
      | None -> Alcotest.fail "unexpected None")
    cases

let test_classify_g4_stack_wrapper () =
  let sys = Boot.boot Image.Risc in
  (match sys.System.cpu with
  | System.Rcpu cpu ->
    cpu.Ferrite_risc.Cpu.gpr.(1) <- 0xC0300000;  (* outside every stack *)
    (match
       Crash_cause.classify sys
         (System.Risc_fault (Ferrite_risc.Exn.Dsi { addr = 0x10; write = false; protection = false }))
     with
    | Some (Crash_cause.G4 Crash_cause.Stack_overflow) -> ()
    | _ -> Alcotest.fail "wrapper must reclassify as Stack Overflow");
    (* a pointer into another task's stack passes the wrapper *)
    let lo, _ = System.task_stack_range sys 5 in
    cpu.Ferrite_risc.Cpu.gpr.(1) <- lo + 128;
    (match
       Crash_cause.classify sys
         (System.Risc_fault (Ferrite_risc.Exn.Dsi { addr = 0x10; write = false; protection = false }))
     with
    | Some (Crash_cause.G4 Crash_cause.Bad_area) -> ()
    | _ -> Alcotest.fail "another task's stack must pass the wrapper")
  | _ -> assert false)

(* ---------- collector ---------- *)

let dummy_info =
  {
    Outcome.ci_cause = Crash_cause.P4 Crash_cause.Bad_paging;
    ci_latency = 42;
    ci_pc = 0xC0100000;
    ci_function = None;
  }

let test_collector_lossless () =
  let c = Collector.create ~loss_rate:0.0 ~seed:1L () in
  for _ = 1 to 100 do
    check_bool "delivered" true (Collector.send c dummy_info <> None)
  done;
  check_int "received" 100 (Collector.received c);
  check_int "lost" 0 (Collector.lost c)

let test_collector_lossy () =
  let c = Collector.create ~loss_rate:1.0 ~seed:1L () in
  for _ = 1 to 50 do
    check_bool "dropped" true (Collector.send c dummy_info = None)
  done;
  check_int "all lost" 50 (Collector.lost c)

let test_collector_rate () =
  let c = Collector.create ~loss_rate:0.2 ~seed:7L () in
  for _ = 1 to 2000 do
    ignore (Collector.send c dummy_info)
  done;
  let frac = float_of_int (Collector.lost c) /. 2000.0 in
  check_bool "about 20% lost" true (frac > 0.15 && frac < 0.25)

(* The parallel executor merges per-worker partial tallies in whatever order
   the domains finish, so the merge must be a commutative monoid on stats. *)
let stats_arb =
  QCheck.map
    (fun ((r, l), (rt, g, d)) ->
      {
        Collector.st_received = r;
        st_lost = l;
        st_retransmitted = rt;
        st_gave_up = g;
        st_dup_dropped = d;
        st_by_model = (if r > 0 then [ ("single_bit", r) ] else []);
      })
    QCheck.(
      pair
        (pair (int_range 0 10_000) (int_range 0 10_000))
        (triple (int_range 0 10_000) (int_range 0 10_000) (int_range 0 10_000)))

let prop_collector_merge_monoid =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"merge_stats is a commutative monoid" ~count:200
       (QCheck.triple stats_arb stats_arb stats_arb)
       (fun (a, b, c) ->
         let ( + ) = Collector.merge_stats in
         a + (b + c) = a + b + c
         && a + b = b + a
         && Collector.zero_stats + a = a
         && a + Collector.zero_stats = a))

(* ---------- campaign ---------- *)

let test_campaign_deterministic () =
  let cfg = Campaign.default ~arch:Image.Cisc ~kind:Target.Stack ~injections:40 in
  let r1 = Campaign.run cfg and r2 = Campaign.run cfg in
  let s1 = Campaign.summarize r1 and s2 = Campaign.summarize r2 in
  check_bool "identical summaries" true (s1 = s2);
  check_bool "identical cause lists" true (Campaign.crash_causes r1 = Campaign.crash_causes r2)

let test_campaign_accounting () =
  let cfg = Campaign.default ~arch:Image.Risc ~kind:Target.Code ~injections:60 in
  let r = Campaign.run cfg in
  let s = Campaign.summarize r in
  check_int "records = injections" 60 s.Campaign.injected;
  check_int "outcomes partition the activated set"
    s.Campaign.activated
    (s.Campaign.not_manifested + s.Campaign.fsv + s.Campaign.known_crash
   + s.Campaign.hang_or_unknown);
  check_bool "reboots bounded by injections" true (r.Campaign.reboots <= 60 + 1);
  check_bool "latencies only from known crashes" true
    (List.length (Campaign.latencies r) = s.Campaign.known_crash)

let test_campaign_seed_changes_results () =
  let cfg = Campaign.default ~arch:Image.Cisc ~kind:Target.Data ~injections:120 in
  let r1 = Campaign.run cfg in
  let r2 = Campaign.run { cfg with Campaign.seed = 0x1234L } in
  check_bool "different seeds, different targets" true
    (List.map (fun r -> r.Outcome.r_target) r1.Campaign.records
    <> List.map (fun r -> r.Outcome.r_target) r2.Campaign.records)

let () =
  Alcotest.run "ferrite_injection"
    [
      ( "targets",
        [
          Alcotest.test_case "code targets in bounds" `Quick test_code_targets_within_functions;
          Alcotest.test_case "stack targets in stacks" `Quick test_stack_targets_within_stacks;
          Alcotest.test_case "data excludes user pages" `Quick test_data_targets_exclude_user_regions;
          Alcotest.test_case "register rosters" `Quick test_register_targets;
        ] );
      ( "engine",
        [
          Alcotest.test_case "cold data restored" `Quick test_cold_data_not_activated_and_restored;
          Alcotest.test_case "hot data activates" `Quick test_hot_data_activates;
          Alcotest.test_case "register activation" `Quick test_register_injection_always_activates;
          Alcotest.test_case "code crash latency" `Quick test_code_injection_crash_has_latency;
          Alcotest.test_case "stuck lock -> Hang" `Quick test_stuck_lock_becomes_hang;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "unactivated hang restores" `Quick test_unactivated_hang_restores;
          Alcotest.test_case "code flip bit symmetry" `Quick test_code_flip_bit_symmetry;
          Alcotest.test_case "unactivated crash latency" `Quick test_unactivated_crash_latency;
          test_register_injection_exact_instant;
        ] );
      ( "classification",
        [
          Alcotest.test_case "P4 causes" `Quick test_classify_p4;
          Alcotest.test_case "P4 panic flag" `Quick test_classify_p4_panic_flag;
          Alcotest.test_case "G4 causes" `Quick test_classify_g4;
          Alcotest.test_case "G4 stack wrapper" `Quick test_classify_g4_stack_wrapper;
        ] );
      ( "collector",
        [
          Alcotest.test_case "lossless" `Quick test_collector_lossless;
          Alcotest.test_case "total loss" `Quick test_collector_lossy;
          Alcotest.test_case "loss rate" `Quick test_collector_rate;
          prop_collector_merge_monoid;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
          Alcotest.test_case "accounting" `Quick test_campaign_accounting;
          Alcotest.test_case "seed sensitivity" `Quick test_campaign_seed_changes_results;
        ] );
    ]
