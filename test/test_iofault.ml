(* Tests for the seeded I/O fault layer: plan determinism, the write_fully
   retry loop (the fix for unchecked Unix.write returns), the ENOSPC byte
   budget, and the qcheck salvage properties — a journal or store written
   under a recoverable fault plan is byte-identical to a fault-free run, any
   truncation of it recovers the longest valid prefix, and resuming from the
   truncation re-creates the uninterrupted file bit for bit. *)

open Ferrite_injection
module Iofault = Ferrite_iofault.Iofault
module Store = Ferrite_store.Store
module Tracer = Ferrite_trace.Tracer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_temp f =
  let path = Filename.temp_file "ferrite_iofault" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* every test leaves the ambient plan disarmed, whatever happens *)
let disarmed f =
  Fun.protect ~finally:(fun () -> Iofault.disarm ()) f

(* ---------- plans ---------- *)

let test_plan_of_seed_deterministic () =
  check_bool "same seed, same plan" true (Iofault.plan_of_seed 7L = Iofault.plan_of_seed 7L);
  (* the ENOSPC arm triggers on about half the seeds; both kinds must exist *)
  let onsets =
    List.init 32 (fun i -> (Iofault.plan_of_seed (Int64.of_int i)).Iofault.pl_enospc_after)
  in
  check_bool "some seeds draw an ENOSPC onset" true (List.exists Option.is_some onsets);
  check_bool "some seeds stay recoverable" true (List.exists Option.is_none onsets);
  List.iter
    (function
      | None -> ()
      | Some n ->
        check_bool "onset in [16 KiB, 64 KiB)" true (n >= 16_384 && n < 65_536))
    onsets

(* ---------- the unchecked-write bug and its fix ---------- *)

(* Before the fault layer, several writers did [ignore (Unix.write fd ...)]:
   correct only while every write is complete. This test constructs the
   counterexample — under a short-write plan a single write really does
   transfer a strict prefix — and then shows [write_fully] absorbing the
   same faults into a byte-identical file. A build that ignored short
   returns would fail the identity check below. *)
let test_short_write_needs_the_loop () =
  disarmed (fun () ->
      let plan =
        { Iofault.recoverable_plan with Iofault.pl_short_write = 0.9; pl_delay = 0.0 }
      in
      Iofault.arm ~plan ~seed:11L ();
      let payload = String.make 4096 'x' in
      (* 1: single writes may be short — the raw-syscall idiom is wrong *)
      let saw_short =
        with_temp (fun path ->
            let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
            let io = Iofault.wrap_file ~label:"short" fd in
            let short = ref false in
            for _ = 1 to 32 do
              let n =
                try Iofault.write_substring io payload 0 (String.length payload)
                with Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> String.length payload
              in
              if n < String.length payload then short := true
            done;
            Iofault.close io;
            !short)
      in
      check_bool "a single write returned a strict prefix" true saw_short;
      (* 2: write_fully under the same plan leaves the file byte-identical *)
      let chaotic =
        with_temp (fun path ->
            Iofault.arm ~plan ~seed:11L ();
            let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
            let io = Iofault.wrap_file ~label:"full" fd in
            for _ = 1 to 8 do
              Iofault.write_fully io payload
            done;
            Iofault.close io;
            read_file path)
      in
      let clean =
        with_temp (fun path ->
            Iofault.disarm ();
            let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
            let io = Iofault.wrap_file ~label:"full" fd in
            for _ = 1 to 8 do
              Iofault.write_fully io payload
            done;
            Iofault.close io;
            read_file path)
      in
      check_bool "write_fully absorbed every fault" true (chaotic = clean);
      check_bool "and faults were actually injected" true
        ((Iofault.stats ()).Iofault.st_faults > 0))

let test_stats_are_seed_deterministic () =
  disarmed (fun () ->
      let run () =
        Iofault.arm ~seed:0x5EEDL ();
        with_temp (fun path ->
            let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
            let io = Iofault.wrap_file ~label:"det" fd in
            for i = 1 to 64 do
              Iofault.write_fully io (String.make (i * 7) 'y')
            done;
            Iofault.close io);
        Iofault.stats ()
      in
      let a = run () and b = run () in
      check_bool "identical fault streams" true (a = b);
      check_bool "the plan did something" true (a.Iofault.st_faults > 0))

(* ---------- ENOSPC budget ---------- *)

let test_enospc_budget_is_global_and_sticky () =
  disarmed (fun () ->
      let plan = { Iofault.recoverable_plan with Iofault.pl_enospc_after = Some 1000 } in
      Iofault.arm ~plan ~seed:3L ();
      with_temp (fun path ->
          let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
          let io = Iofault.wrap_file ~label:"budget" fd in
          let wrote = ref 0 in
          let hit = ref false in
          (try
             for _ = 1 to 100 do
               Iofault.write_fully io (String.make 64 'z');
               wrote := !wrote + 64
             done
           with Unix.Unix_error (Unix.ENOSPC, _, _) -> hit := true);
          check_bool "the budget ran out" true !hit;
          check_bool "what landed fits the budget" true
            ((Unix.fstat fd).Unix.st_size <= 1000);
          (* the disk stays full: every later write fails, on any handle *)
          (match Iofault.write_fully io "more" with
          | () -> Alcotest.fail "write succeeded on a full disk"
          | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
          with_temp (fun path2 ->
              let fd2 = Unix.openfile path2 [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
              let io2 = Iofault.wrap_file ~label:"budget2" fd2 in
              (match Iofault.write_fully io2 "other file" with
              | () -> Alcotest.fail "a second file dodged the global budget"
              | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
              Iofault.close io2);
          check_bool "enospc counted" true ((Iofault.stats ()).Iofault.st_enospc > 0);
          Iofault.close io))

let test_fsync_failure_is_reported_not_fatal () =
  disarmed (fun () ->
      let plan = { Iofault.recoverable_plan with Iofault.pl_fsync_fail = 1.0 } in
      Iofault.arm ~plan ~seed:5L ();
      with_temp (fun path ->
          let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
          let io = Iofault.wrap_file ~label:"sync" fd in
          (match Iofault.fsync io with
          | () -> Alcotest.fail "fsync should have failed under pl_fsync_fail=1"
          | exception Unix.Unix_error (Unix.EIO, _, _) -> ());
          check_bool "fsync failure counted" true
            ((Iofault.stats ()).Iofault.st_fsync_fail > 0);
          Iofault.close io))

let test_salvage_labels_dedup () =
  disarmed (fun () ->
      Iofault.arm ~seed:1L ();
      Iofault.note_salvage "journal";
      Iofault.note_salvage "store";
      Iofault.note_salvage "journal";
      check_bool "labels, oldest first, deduplicated" true
        (Iofault.salvage_labels () = [ "journal"; "store" ]);
      check_int "each event counted" 3 (Iofault.stats ()).Iofault.st_salvages)

(* ---------- salvage properties: journal ---------- *)

let stamp =
  { Ferrite_trace.Event.s_cycles = 0; s_instructions = 0; s_pc = 0; s_function = None }

let mk_entry i =
  let tracer = Tracer.create Tracer.default_config in
  Tracer.record tracer stamp (Ferrite_trace.Event.Trial_begin { trial = i; target = "t" });
  {
    Journal.je_index = i;
    je_record =
      {
        Outcome.r_target = Target.Data_target { addr = 4 * i; bit = i mod 8 };
        r_outcome = (if i mod 2 = 0 then Outcome.Not_manifested else Outcome.Hang);
        r_activated = true;
        r_activation_cycle = Some (100 + i);
        r_model = Fault_model.Single_bit_transient;
      };
    je_stats =
      {
        Collector.st_received = i;
        st_lost = i mod 3;
        st_retransmitted = 0;
        st_gave_up = 0;
        st_dup_dropped = 0;
        st_by_model = (if i > 0 then [ ("single_bit", i) ] else []);
      };
    je_trace = Tracer.trial_of tracer ~index:i ~target:"t" ~outcome:"ok";
  }

let hash = Journal.plan_hash_of_string "iofault-prop-plan"

let write_journal path entries =
  Sys.remove path;
  let w, _ = Journal.open_for_append ~path ~plan_hash:hash in
  List.iter (Journal.append w) entries;
  Journal.close w

let rec take n = function x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> []

(* Satellite property: write a journal under a recoverable fault plan; the
   bytes are identical to fault-free; every truncation recovers the longest
   valid prefix of entries; appending the rest after recovery rebuilds the
   uninterrupted file exactly (the --resume path). *)
let prop_journal_salvage =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"journal: chaos-written, truncated, resumed" ~count:40
       QCheck.(triple (int_range 1 20) (int_range 0 10_000) small_int)
       (fun (n, cut_frac, seed) ->
         disarmed (fun () ->
             with_temp (fun path ->
                 let entries = List.init n mk_entry in
                 Iofault.disarm ();
                 write_journal path entries;
                 let clean = read_file path in
                 Iofault.arm ~plan:Iofault.recoverable_plan ~seed:(Int64.of_int seed) ();
                 write_journal path entries;
                 Iofault.disarm ();
                 let chaotic = read_file path in
                 if chaotic <> clean then
                   QCheck.Test.fail_report "chaos changed the journal bytes";
                 (* truncate anywhere, including mid-header and mid-frame *)
                 let cut = cut_frac * String.length clean / 10_000 in
                 write_file path (String.sub clean 0 cut);
                 let rc = Journal.recover ~path ~plan_hash:hash in
                 let k = List.length rc.Journal.rc_entries in
                 if rc.Journal.rc_entries <> take k entries then
                   QCheck.Test.fail_report "recovery is not a prefix of the entries";
                 if cut = String.length clean && k <> n then
                   QCheck.Test.fail_report "a whole file must recover whole";
                 (* resume: recover, then append what is missing *)
                 let w, rc = Journal.open_for_append ~path ~plan_hash:hash in
                 let k = List.length rc.Journal.rc_entries in
                 List.iteri (fun i e -> if i >= k then Journal.append w e) entries;
                 Journal.close w;
                 read_file path = clean))))

(* ---------- salvage properties: store ---------- *)

let mk_row i =
  {
    Store.r_index = i;
    r_arch = (if i land 1 = 0 then "cisc" else "risc");
    r_kind = "stack";
    r_model = "single_bit";
    r_outcome = (if i mod 3 = 0 then "crash" else "not_manifested");
    r_activated = i mod 4 <> 0;
    r_activation_cycle = (if i mod 2 = 0 then Some (50 + i) else None);
    r_cause = (if i mod 3 = 0 then Some "invalid_op" else None);
    r_latency = (if i mod 3 = 0 then Some (i * 17) else None);
    r_pc = (if i mod 3 = 0 then Some (0x1000 + i) else None);
    r_function = (if i mod 6 = 0 then Some "schedule" else None);
    r_triage = (if i mod 3 = 0 then Some "wild_jump" else None);
  }

let write_store_rows path rows =
  let w = Store.create ~block_rows:5 path in
  List.iter (Store.append w) rows;
  Store.close w

let prop_store_salvage =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"store: chaos-written, truncated, resumed" ~count:40
       QCheck.(triple (int_range 1 40) (int_range 0 10_000) small_int)
       (fun (n, cut_frac, seed) ->
         disarmed (fun () ->
             with_temp (fun path ->
                 let rows = List.init n mk_row in
                 Iofault.disarm ();
                 write_store_rows path rows;
                 let clean = read_file path in
                 Iofault.arm ~plan:Iofault.recoverable_plan ~seed:(Int64.of_int seed) ();
                 write_store_rows path rows;
                 Iofault.disarm ();
                 if read_file path <> clean then
                   QCheck.Test.fail_report "chaos changed the store bytes";
                 (* truncate after the header (a torn header is Not_a_store,
                    the reader's explicit refusal, not a salvage state);
                    the header length is what an empty store occupies *)
                 let header =
                   with_temp (fun p ->
                       Store.close (Store.create p);
                       String.length (read_file p))
                 in
                 let cut =
                   header + (cut_frac * (String.length clean - header) / 10_000)
                 in
                 write_file path (String.sub clean 0 cut);
                 let recovered, _ = Store.read_all path in
                 let k = List.length recovered in
                 if recovered <> take k rows then
                   QCheck.Test.fail_report "recovery is not a prefix of the rows";
                 if cut = String.length clean && k <> n then
                   QCheck.Test.fail_report "a whole file must recover whole";
                 (* resume: append the missing rows; whole blocks survive, so
                    block framing realigns and the bytes match exactly *)
                 let w = Store.open_append ~block_rows:5 path in
                 List.iteri (fun i r -> if i >= k then Store.append w r) rows;
                 Store.close w;
                 read_file path = clean))))

let () =
  Alcotest.run "ferrite_iofault"
    [
      ( "plans",
        [
          Alcotest.test_case "plan_of_seed deterministic" `Quick
            test_plan_of_seed_deterministic;
        ] );
      ( "retry",
        [
          Alcotest.test_case "short writes need the loop" `Quick
            test_short_write_needs_the_loop;
          Alcotest.test_case "stats are seed-deterministic" `Quick
            test_stats_are_seed_deterministic;
        ] );
      ( "degrade",
        [
          Alcotest.test_case "enospc budget global and sticky" `Quick
            test_enospc_budget_is_global_and_sticky;
          Alcotest.test_case "fsync failure reported" `Quick
            test_fsync_failure_is_reported_not_fatal;
          Alcotest.test_case "salvage labels" `Quick test_salvage_labels_dedup;
        ] );
      ("salvage", [ prop_journal_salvage; prop_store_salvage ]);
    ]
