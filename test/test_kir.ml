(* Tests for the KIR compiler: layout, builder, both backends, the linker —
   and above all *differential execution*: every test program is compiled to
   both ISAs, run on both simulators, and must produce identical results.
   The kernel's cross-platform identity rests on this property. *)

open Ferrite_machine
module Ir = Ferrite_kir.Ir
module B = Ferrite_kir.Builder
module Layout = Ferrite_kir.Layout
module Linker = Ferrite_kir.Linker
module Image = Ferrite_kir.Image
module Cisc_backend = Ferrite_kir.Cisc_backend
module Risc_backend = Ferrite_kir.Risc_backend

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Layout ---------- *)

let demo_struct =
  Ir.struct_decl "demo"
    [
      Ir.field "a" Ir.U8 ~init:0x11;
      Ir.field "b" Ir.U16 ~init:0x2233;
      Ir.field "c" Ir.U32 ~init:0x44556677;
      Ir.field "d" Ir.U8 ~init:0x88;
    ]

let test_layout_packed () =
  let sl = Layout.layout_struct Layout.Packed demo_struct in
  check_int "a at 0" 0 (Layout.field_of sl "a").Layout.fl_offset;
  check_int "b aligned to 2" 2 (Layout.field_of sl "b").Layout.fl_offset;
  check_int "c aligned to 4" 4 (Layout.field_of sl "c").Layout.fl_offset;
  check_int "d packs after" 8 (Layout.field_of sl "d").Layout.fl_offset;
  check_int "size rounded to 4" 12 sl.Layout.sl_size

let test_layout_widened () =
  let sl = Layout.layout_struct Layout.Widened demo_struct in
  check_int "a slot 0" 0 (Layout.field_of sl "a").Layout.fl_offset;
  check_int "b slot 1" 4 (Layout.field_of sl "b").Layout.fl_offset;
  check_int "c slot 2" 8 (Layout.field_of sl "c").Layout.fl_offset;
  check_int "d slot 3" 12 (Layout.field_of sl "d").Layout.fl_offset;
  check_int "every field 4 bytes" 16 sl.Layout.sl_size

let test_layout_widened_sparser () =
  (* the paper's claim in structural form: same content, more bytes on RISC *)
  let p = Layout.layout_struct Layout.Packed demo_struct in
  let w = Layout.layout_struct Layout.Widened demo_struct in
  check_bool "widened is strictly larger" true (w.Layout.sl_size > p.Layout.sl_size)

let test_init_bytes_endianness () =
  let le = Layout.init_bytes Layout.Packed Layout.Le demo_struct in
  check_int "u16 LE low byte first" 0x33 (Char.code le.[2]);
  check_int "u16 LE high byte" 0x22 (Char.code le.[3]);
  let be = Layout.init_bytes Layout.Widened Layout.Be demo_struct in
  check_int "u8 value in first byte of slot" 0x11 (Char.code be.[0]);
  check_int "padding after u8" 0 (Char.code be.[1]);
  check_int "u16 BE high byte first" 0x22 (Char.code be.[4])

let test_data_section () =
  let program =
    {
      Ir.p_structs = [ demo_struct ];
      p_globals =
        [ Ir.Gstruct ("one", demo_struct); Ir.Gwords ("words", [| 1; 2; 3 |]);
          Ir.Gbuffer ("buf", 10) ];
      p_funcs = [];
    }
  in
  let ds = Layout.build_data_section Layout.Packed Layout.Le ~base:0x1000 program in
  let one = Layout.find_global ds "one" in
  check_int "first global at base" 0x1000 one.Layout.pg_addr;
  let words = Layout.find_global ds "words" in
  check_int "aligned placement" 0 (words.Layout.pg_addr land 3);
  check_int "words size" 12 words.Layout.pg_size;
  let buf = Layout.find_global ds "buf" in
  check_int "buffer rounded up" 12 buf.Layout.pg_size;
  check_int "live bytes count value bytes only" 8 one.Layout.pg_live_bytes;
  check_bool "bytes length matches size" true (String.length ds.Layout.ds_bytes = ds.Layout.ds_size)

(* ---------- differential execution harness ---------- *)

let stop_addr = 0xFFFF0000

let exec_one arch (program : Ir.program) fn args =
  let cfuncs =
    match arch with
    | Image.Cisc ->
      List.map (Cisc_backend.compile_func ~structs:program.Ir.p_structs) program.Ir.p_funcs
    | Image.Risc ->
      List.map (Risc_backend.compile_func ~structs:program.Ir.p_structs) program.Ir.p_funcs
  in
  let image = Linker.link ~arch ~cfuncs ~program () in
  let mem = Memory.create () in
  Memory.map mem ~addr:image.Image.img_text_base
    ~size:(max 4096 (Image.text_size image))
    ~perm:Memory.perm_rx;
  Memory.blit_string mem ~addr:image.Image.img_text_base image.Image.img_text;
  let data = image.Image.img_data in
  Memory.map mem ~addr:data.Layout.ds_base ~size:(max 4096 data.Layout.ds_size)
    ~perm:Memory.perm_rwx;
  Memory.blit_string mem ~addr:data.Layout.ds_base data.Layout.ds_bytes;
  let stack_top = 0xC0808000 in
  Memory.map mem ~addr:(stack_top - 0x4000) ~size:0x4000 ~perm:Memory.perm_rwx;
  let entry = Image.symbol image fn in
  let run step =
    let rec go n =
      if n = 0 then Error "fuel exhausted"
      else
        match step () with
        | `Stopped -> Ok ()
        | `Fault m -> Error m
        | `Go -> go (n - 1)
    in
    go 2_000_000
  in
  match arch with
  | Image.Cisc ->
    let cpu = Ferrite_cisc.Cpu.create ~mem ~stop_addr in
    cpu.Ferrite_cisc.Cpu.eip <- entry;
    cpu.Ferrite_cisc.Cpu.regs.(Ferrite_cisc.Cpu.esp) <- stack_top;
    List.iter (fun a -> Ferrite_cisc.Cpu.push32 cpu a) (List.rev args);
    Ferrite_cisc.Cpu.push32 cpu stop_addr;
    let step () =
      match Ferrite_cisc.Cpu.step cpu with
      | Ferrite_cisc.Cpu.Stopped -> `Stopped
      | Ferrite_cisc.Cpu.Faulted e -> `Fault (Ferrite_cisc.Exn.to_string e)
      | _ -> `Go
    in
    Result.map (fun () -> cpu.Ferrite_cisc.Cpu.regs.(0)) (run step)
  | Image.Risc ->
    let cpu = Ferrite_risc.Cpu.create ~mem ~stop_addr in
    cpu.Ferrite_risc.Cpu.pc <- entry;
    cpu.Ferrite_risc.Cpu.gpr.(1) <- stack_top;
    cpu.Ferrite_risc.Cpu.lr <- stop_addr;
    List.iteri (fun i a -> cpu.Ferrite_risc.Cpu.gpr.(3 + i) <- a) args;
    let step () =
      match Ferrite_risc.Cpu.step cpu with
      | Ferrite_risc.Cpu.Stopped -> `Stopped
      | Ferrite_risc.Cpu.Faulted e -> `Fault (Ferrite_risc.Exn.to_string e)
      | _ -> `Go
    in
    Result.map (fun () -> cpu.Ferrite_risc.Cpu.gpr.(3)) (run step)

let differential ?(structs = []) ?(globals = []) name funcs fn args =
  let program = { Ir.p_structs = structs; p_globals = globals; p_funcs = funcs } in
  let c = exec_one Image.Cisc program fn args in
  let r = exec_one Image.Risc program fn args in
  match c, r with
  | Ok a, Ok b ->
    check_int (name ^ ": CISC = RISC") a b;
    a
  | Error m, _ -> Alcotest.failf "%s: CISC failed: %s" name m
  | _, Error m -> Alcotest.failf "%s: RISC failed: %s" name m

(* ---------- differential programs ---------- *)

let test_diff_arith () =
  let f =
    B.func "main" ~nparams:2 (fun b ->
        let open B in
        let x = param b 0 and y = param b 1 in
        let s = add b x y in
        let d = sub b s (c 3) in
        let m = mul b d y in
        let q = divu b m (c 7) in
        let z = bxor b q (shl b x (c 4)) in
        ret b (band b z (c 0xFFFFFF)))
  in
  let v = differential "arith" [ f ] "main" [ 1000; 77 ] in
  (* golden value computed by the same formula *)
  let expect = ((1000 + 77 - 3) * 77 / 7) lxor (1000 lsl 4) land 0xFFFFFF in
  check_int "matches host arithmetic" expect v

let test_diff_control_flow () =
  (* sum of odd numbers below n, with nested branches *)
  let f =
    B.func "main" ~nparams:1 (fun b ->
        let open B in
        let n = param b 0 in
        let acc = var b (c 0) in
        let i = var b (c 0) in
        while_ b
          (fun () -> (Ult, v i, n))
          (fun () ->
            when_ b Eq (band b (v i) (c 1)) (c 1) (fun () -> set b acc (add b (v acc) (v i)));
            set b i (add b (v i) (c 1)));
        ret b (v acc))
  in
  let v = differential "control flow" [ f ] "main" [ 100 ] in
  check_int "sum of odds < 100" 2500 v

let test_diff_calls_and_recursion () =
  let fact =
    B.func "fact" ~nparams:1 (fun b ->
        let open B in
        let n = param b 0 in
        if_ b Ule n (c 1)
          (fun () -> ret b (c 1))
          (fun () ->
            let rest = call b "fact" [ sub b n (c 1) ] in
            ret b (mul b n rest)))
  in
  let main =
    B.func "main" ~nparams:1 (fun b ->
        let open B in
        ret b (call b "fact" [ param b 0 ]))
  in
  check_int "10!" 3628800 (differential "recursion" [ fact; main ] "main" [ 10 ])

let test_diff_struct_access () =
  (* both layouts must agree on field semantics despite different offsets *)
  let main =
    B.func "main" ~nparams:0 (fun b ->
        let open B in
        let s = gaddr b "inst" in
        storef b "demo" "a" s (c 0xAB);
        storef b "demo" "b" s (c 0x1234);
        storef b "demo" "c" s (c 0xDEADBEEF);
        let acc = add b (loadf b "demo" "a" s) (loadf b "demo" "b" s) in
        let acc = add b acc (band b (loadf b "demo" "c" s) (c 0xFFFF)) in
        ret b acc)
  in
  let v =
    differential ~structs:[ demo_struct ]
      ~globals:[ Ir.Gstruct ("inst", demo_struct) ]
      "struct access" [ main ] "main" []
  in
  check_int "field semantics" (0xAB + 0x1234 + 0xBEEF) v

let test_diff_subword_isolation () =
  (* writing a u8 field must not clobber its neighbours on either layout *)
  let main =
    B.func "main" ~nparams:0 (fun b ->
        let open B in
        let s = gaddr b "inst" in
        storef b "demo" "b" s (c 0x5566);
        storef b "demo" "a" s (c 0xFF);
        storef b "demo" "d" s (c 0x77);
        ret b (loadf b "demo" "b" s))
  in
  let v =
    differential ~structs:[ demo_struct ]
      ~globals:[ Ir.Gstruct ("inst", demo_struct) ]
      "subword isolation" [ main ] "main" []
  in
  check_int "u16 survives u8 writes" 0x5566 v

let test_diff_arrays () =
  let main =
    B.func "main" ~nparams:1 (fun b ->
        let open B in
        let n = param b 0 in
        let base = gaddr b "arr" in
        loop_n b n (fun i ->
            let e = elemaddr b "demo" base i in
            storef b "demo" "c" e (mul b i i));
        let acc = var b (c 0) in
        loop_n b n (fun i ->
            let e = elemaddr b "demo" base i in
            set b acc (add b (v acc) (loadf b "demo" "c" e)));
        ret b (v acc))
  in
  let v =
    differential ~structs:[ demo_struct ]
      ~globals:[ Ir.Garray ("arr", demo_struct, 16) ]
      "arrays" [ main ] "main" [ 10 ]
  in
  check_int "sum of squares" 285 v

let test_diff_indirect_call () =
  let double = B.func "double" ~nparams:1 (fun b -> B.ret b (B.add b (B.param b 0) (B.param b 0))) in
  let triple =
    B.func "triple" ~nparams:1 (fun b ->
        B.ret b (B.add b (B.param b 0) (B.add b (B.param b 0) (B.param b 0))))
  in
  let main =
    B.func "main" ~nparams:1 (fun b ->
        let open B in
        let table = gaddr b "table" in
        store b I32 table 0 (gaddr b "double");
        store b I32 table 4 (gaddr b "triple");
        let f0 = load b I32 table 0 in
        let f1 = load b I32 table 4 in
        let a = calli b f0 [ param b 0 ] in
        let bb = calli b f1 [ param b 0 ] in
        ret b (add b a bb))
  in
  let v =
    differential ~globals:[ Ir.Gwords ("table", [| 0; 0 |]) ] "indirect call"
      [ double; triple; main ] "main" [ 21 ]
  in
  check_int "2x+3x" 105 v

let test_diff_byte_memory () =
  let main =
    B.func "main" ~nparams:0 (fun b ->
        let open B in
        let buf = gaddr b "buf" in
        loop_n b (c 64) (fun i -> store b I8 (add b buf i) 0 (band b (mul b i (c 7)) (c 0xFF)));
        let acc = var b (c 0) in
        loop_n b (c 64) (fun i ->
            set b acc (add b (v acc) (load b I8 (add b buf i) 0)));
        ret b (v acc))
  in
  let expect = List.fold_left (fun a i -> a + (i * 7 land 0xFF)) 0 (List.init 64 Fun.id) in
  let v =
    differential ~globals:[ Ir.Gbuffer ("buf", 64) ] "byte memory" [ main ] "main" []
  in
  check_int "byte loop" expect v

let test_diff_signed_loads () =
  let main =
    B.func "main" ~nparams:0 (fun b ->
        let open B in
        let buf = gaddr b "buf" in
        store b I8 buf 0 (c 0x80);
        store b I16 buf 2 (c 0x8000);
        let sb = load b I8 ~signed:true buf 0 in
        let sh = load b I16 ~signed:true buf 2 in
        let ub = load b I8 buf 0 in
        ret b (band b (add b (add b sb sh) ub) (c 0xFFFFFFF)))
  in
  let expect = (0xFFFFFF80 + 0xFFFF8000 + 0x80) land 0xFFFFFFF in
  let v = differential ~globals:[ Ir.Gbuffer ("buf", 8) ] "signed loads" [ main ] "main" [] in
  check_int "sign extension agrees" expect v

let test_diff_shifts_unsigned_compare () =
  let main =
    B.func "main" ~nparams:2 (fun b ->
        let open B in
        let x = param b 0 and k = param b 1 in
        let l = shl b x k in
        let r = shr b l (c 3) in
        let a = sar b (c 0x80000000) k in
        let flag = var b (c 0) in
        when_ b Ugt a (c 0x7FFFFFFF) (fun () -> set b flag (c 1));
        ret b (band b (add b (add b r a) (v flag)) (c 0x7FFFFFFF)))
  in
  let l = (0xBEEF lsl 5) land 0xFFFFFFFF in
  let r = l lsr 3 in
  let a = Word.sar 0x80000000 5 in
  let expect = (r + a + 1) land 0x7FFFFFFF in
  check_int "shift/compare semantics" expect
    (differential "shifts" [ main ] "main" [ 0xBEEF; 5 ])

let test_diff_many_locals_spill () =
  (* more locals than either register file can hold: forces spills on both *)
  let main =
    B.func "main" ~nparams:1 (fun b ->
        let open B in
        let x = param b 0 in
        let vars = List.init 24 (fun i -> var b (add b x (c i))) in
        let acc = var b (c 0) in
        List.iter (fun r -> set b acc (add b (v acc) (v r))) vars;
        (* reuse them after the sum so they stay live across it *)
        List.iteri (fun i r -> when_ b Eq (v r) (c (100 + i)) (fun () -> set b acc (add b (v acc) (c 1)))) vars;
        ret b (v acc))
  in
  let expect = (24 * 100) + (24 * 23 / 2) + 24 in
  check_int "spilled locals" expect (differential "spills" [ main ] "main" [ 100 ])

let test_diff_both_branches_return () =
  let f =
    B.func "main" ~nparams:1 (fun b ->
        let open B in
        if_ b Ult (param b 0) (c 10)
          (fun () -> ret b (c 111))
          (fun () -> ret b (c 222)))
  in
  check_int "then" 111 (differential "both-ret then" [ f ] "main" [ 5 ]);
  check_int "else" 222 (differential "both-ret else" [ f ] "main" [ 50 ])

let test_diff_loop_zero_iterations () =
  let f =
    B.func "main" ~nparams:1 (fun b ->
        let open B in
        let acc = var b (c 7) in
        loop_n b (param b 0) (fun _ -> set b acc (c 0));
        ret b (v acc))
  in
  check_int "zero-trip loop" 7 (differential "loop 0" [ f ] "main" [ 0 ])

let test_diff_nested_loops () =
  let f =
    B.func "main" ~nparams:1 (fun b ->
        let open B in
        let n = param b 0 in
        let acc = var b (c 0) in
        loop_n b n (fun i ->
            loop_n b n (fun j ->
                when_ b Ult i j (fun () -> set b acc (add b (v acc) (c 1)))));
        ret b (v acc))
  in
  (* pairs (i, j) with i < j among 0..7: 8*7/2 = 28 *)
  check_int "nested" 28 (differential "nested loops" [ f ] "main" [ 8 ])

let test_diff_early_return_in_loop () =
  let f =
    B.func "main" ~nparams:1 (fun b ->
        let open B in
        let n = param b 0 in
        let i = var b (c 0) in
        while_ b
          (fun () -> (Ult, v i, c 1000))
          (fun () ->
            when_ b Eq (v i) n (fun () -> ret b (mul b (v i) (c 3)));
            set b i (add b (v i) (c 1)));
        ret b (c 0xFFFFFFFF))
  in
  check_int "early return" 36 (differential "early ret" [ f ] "main" [ 12 ])

(* ---------- linker ---------- *)

let test_linker_ha16_boundary () =
  (* the Ha16/Lo16 pair must reconstruct addresses whose low half sits at the
     carry boundary (the linker computes S+addend in full before splitting,
     so a low-half overflow bumps the high half) *)
  let filler =
    (* a function large enough to push the next symbol's low half near the
       carry boundary is impractical; instead exercise the linker's math
       directly through a custom data_base whose low half is near 0xFFFF *)
    B.func "probe" ~nparams:0 (fun b ->
        let open B in
        ret b (gaddr b "marker"))
  in
  let program =
    { Ir.p_structs = []; p_globals = [ Ir.Gwords ("marker", [| 0xAB |]) ]; p_funcs = [ filler ] }
  in
  let cfuncs = List.map (Risc_backend.compile_func ~structs:[]) program.Ir.p_funcs in
  (* data_base 0xC040FFF0: the global's address has low half 0xFFF0; reading
     it back through lis/ori must reconstruct it exactly *)
  let image =
    Linker.link ~arch:Image.Risc ~data_base:0xC040FFF0 ~cfuncs ~program ()
  in
  let addr = Image.symbol image "marker" in
  check_int "marker placed at the odd base" 0xC040FFF0 addr;
  (* execute the function and check it returns the address *)
  let mem = Memory.create () in
  Memory.map mem ~addr:image.Image.img_text_base ~size:4096 ~perm:Memory.perm_rx;
  Memory.blit_string mem ~addr:image.Image.img_text_base image.Image.img_text;
  Memory.map mem ~addr:0xC040F000 ~size:0x3000 ~perm:Memory.perm_rw;
  Memory.blit_string mem ~addr:image.Image.img_data.Layout.ds_base
    image.Image.img_data.Layout.ds_bytes;
  let cpu = Ferrite_risc.Cpu.create ~mem ~stop_addr in
  cpu.Ferrite_risc.Cpu.pc <- Image.symbol image "probe";
  cpu.Ferrite_risc.Cpu.gpr.(1) <- 0xC040F800;
  cpu.Ferrite_risc.Cpu.lr <- stop_addr;
  let rec go n =
    if n = 0 then Alcotest.fail "probe did not stop"
    else
      match Ferrite_risc.Cpu.step cpu with
      | Ferrite_risc.Cpu.Stopped -> ()
      | Ferrite_risc.Cpu.Faulted e -> Alcotest.failf "probe fault: %s" (Ferrite_risc.Exn.to_string e)
      | _ -> go (n - 1)
  in
  go 1000;
  check_int "lis/ori reconstructs the address" addr cpu.Ferrite_risc.Cpu.gpr.(3)

let prop_differential_random_programs =
  (* random straight-line + bounded-loop programs agree across ISAs *)
  let gen =
    let open QCheck.Gen in
    let* seed = int_bound 0xFFFFF in
    let* nops = int_range 3 12 in
    return (seed, nops)
  in
  QCheck.Test.make ~name:"random bounded programs agree across ISAs" ~count:25
    (QCheck.make gen)
    (fun (seed, nops) ->
      let rng = Ferrite_machine.Rng.create ~seed:(Int64.of_int seed) in
      let f =
        B.func "main" ~nparams:1 (fun b ->
            let open B in
            let acc = var b (param b 0) in
            for _ = 1 to nops do
              match Ferrite_machine.Rng.int rng 7 with
              | 0 -> set b acc (add b (v acc) (c (Ferrite_machine.Rng.int rng 1000)))
              | 1 -> set b acc (sub b (v acc) (c (Ferrite_machine.Rng.int rng 1000)))
              | 2 -> set b acc (mul b (v acc) (c (1 + Ferrite_machine.Rng.int rng 7)))
              | 3 -> set b acc (bxor b (v acc) (c (Ferrite_machine.Rng.int rng 0xFFFF)))
              | 4 -> set b acc (shl b (v acc) (c (Ferrite_machine.Rng.int rng 5)))
              | 5 ->
                let n = Ferrite_machine.Rng.int rng 6 in
                loop_n b (c n) (fun i -> set b acc (add b (v acc) i))
              | _ ->
                when_ b Ult (v acc) (c 0x80000000) (fun () ->
                    set b acc (bor b (v acc) (c 1)))
            done;
            ret b (band b (v acc) (c 0xFFFFFF)))
      in
      let program = { Ir.p_structs = []; p_globals = []; p_funcs = [ f ] } in
      match
        exec_one Image.Cisc program "main" [ 12345 ], exec_one Image.Risc program "main" [ 12345 ]
      with
      | Ok a, Ok b -> a = b
      | _ -> false)

let test_linker_duplicate_symbol () =
  let f = B.func "dup" ~nparams:0 (fun b -> B.ret0 b) in
  let program = { Ir.p_structs = []; p_globals = []; p_funcs = [ f; f ] } in
  let cfuncs = List.map (Cisc_backend.compile_func ~structs:[]) program.Ir.p_funcs in
  match Linker.link ~arch:Image.Cisc ~cfuncs ~program () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate symbol accepted"

let test_linker_undefined_symbol () =
  let f = B.func "main" ~nparams:0 (fun b -> B.call0 b "missing" []; B.ret0 b) in
  let program = { Ir.p_structs = []; p_globals = []; p_funcs = [ f ] } in
  let cfuncs = List.map (Cisc_backend.compile_func ~structs:[]) program.Ir.p_funcs in
  match Linker.link ~arch:Image.Cisc ~cfuncs ~program () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undefined symbol accepted"

let test_function_at () =
  let fa = B.func "fa" ~nparams:0 (fun b -> B.ret0 b) in
  let fb = B.func "fb" ~nparams:0 (fun b -> B.ret0 b) in
  let program = { Ir.p_structs = []; p_globals = []; p_funcs = [ fa; fb ] } in
  let cfuncs = List.map (Cisc_backend.compile_func ~structs:[]) program.Ir.p_funcs in
  let image = Linker.link ~arch:Image.Cisc ~cfuncs ~program () in
  let a = Image.find_func image "fa" in
  let b = Image.find_func image "fb" in
  check_bool "fa found by addr" true
    (Image.function_at image a.Image.fs_addr = Some a);
  check_bool "mid-function addr" true
    (Image.function_at image (b.Image.fs_addr + 2) = Some b);
  check_bool "before text" true (Image.function_at image (a.Image.fs_addr - 1) = None)

(* qcheck: random arithmetic expressions agree across ISAs *)
let prop_differential_arith =
  QCheck.Test.make ~name:"random arith agrees across ISAs" ~count:40
    QCheck.(triple (int_bound 0xFFFF) (int_bound 0xFFFF) (int_bound 4))
    (fun (x, y, sel) ->
      let f =
        B.func "main" ~nparams:2 (fun b ->
            let open B in
            let p = param b 0 and q = param b 1 in
            let r =
              match sel with
              | 0 -> add b p q
              | 1 -> sub b p q
              | 2 -> mul b p (band b q (c 0xFF))
              | 3 -> divu b (add b p (c 1)) (add b q (c 1))
              | _ -> bxor b (shl b p (c 3)) q
            in
            ret b r)
      in
      let program = { Ir.p_structs = []; p_globals = []; p_funcs = [ f ] } in
      match exec_one Image.Cisc program "main" [ x; y ], exec_one Image.Risc program "main" [ x; y ] with
      | Ok a, Ok b -> a = b
      | _ -> false)

(* ---------- encode/decode roundtrip of emitted code ---------- *)

(* Every instruction the backends can emit must survive
   encode→decode→re-encode byte-identically; otherwise a code flip near it
   would corrupt the wrong bytes when the engine re-injects. The kernel image
   is the exhaustive catalogue of backend output, so walk every function. *)
let test_backend_output_roundtrips () =
  List.iter
    (fun arch ->
      let image = Ferrite_kernel.Boot.build_image arch in
      Array.iter
        (fun f ->
          let body =
            String.sub image.Image.img_text
              (f.Image.fs_addr - image.Image.img_text_base)
              f.Image.fs_size
          in
          let checked =
            match arch with
            | Image.Cisc -> Ferrite_check.Oracle.check_cisc_stream body
            | Image.Risc -> Ferrite_check.Oracle.check_risc_stream body
          in
          match checked with
          | Ok () -> ()
          | Error v ->
            Alcotest.failf "%s+%d: %s" f.Image.fs_name v.Ferrite_check.Oracle.v_pos
              v.Ferrite_check.Oracle.v_msg)
        image.Image.img_funcs)
    [ Image.Cisc; Image.Risc ]

(* The same law over the fuzzer's weighted generators, which cover encodings
   the current kernel happens not to contain. *)
let prop_generated_streams_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"generated instruction streams roundtrip" ~count:300
       QCheck.(pair bool (int_range 0 1_000_000))
       (fun (cisc, seed) ->
         let rng = Rng.create ~seed:(Int64.of_int seed) in
         let module O = Ferrite_check.Oracle in
         let module G = Ferrite_check.Gen in
         Result.is_ok
           (if cisc then O.check_cisc_stream (O.encode_cisc_stream (G.cisc_stream rng ~len:12))
            else O.check_risc_stream (O.encode_risc_stream (G.risc_stream rng ~len:12)))))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ferrite_kir"
    [
      ( "layout",
        [
          Alcotest.test_case "packed offsets" `Quick test_layout_packed;
          Alcotest.test_case "widened offsets" `Quick test_layout_widened;
          Alcotest.test_case "widened sparser" `Quick test_layout_widened_sparser;
          Alcotest.test_case "init endianness" `Quick test_init_bytes_endianness;
          Alcotest.test_case "data section" `Quick test_data_section;
        ] );
      ( "differential",
        [
          Alcotest.test_case "arithmetic" `Quick test_diff_arith;
          Alcotest.test_case "control flow" `Quick test_diff_control_flow;
          Alcotest.test_case "calls+recursion" `Quick test_diff_calls_and_recursion;
          Alcotest.test_case "struct access" `Quick test_diff_struct_access;
          Alcotest.test_case "subword isolation" `Quick test_diff_subword_isolation;
          Alcotest.test_case "struct arrays" `Quick test_diff_arrays;
          Alcotest.test_case "indirect calls" `Quick test_diff_indirect_call;
          Alcotest.test_case "byte memory" `Quick test_diff_byte_memory;
          Alcotest.test_case "signed loads" `Quick test_diff_signed_loads;
          Alcotest.test_case "shifts+unsigned cmp" `Quick test_diff_shifts_unsigned_compare;
          Alcotest.test_case "register spills" `Quick test_diff_many_locals_spill;
          Alcotest.test_case "both branches return" `Quick test_diff_both_branches_return;
          Alcotest.test_case "zero-trip loop" `Quick test_diff_loop_zero_iterations;
          Alcotest.test_case "nested loops" `Quick test_diff_nested_loops;
          Alcotest.test_case "early return in loop" `Quick test_diff_early_return_in_loop;
          q prop_differential_arith;
        ] );
      ( "linker",
        [
          Alcotest.test_case "duplicate symbol" `Quick test_linker_duplicate_symbol;
          Alcotest.test_case "undefined symbol" `Quick test_linker_undefined_symbol;
          Alcotest.test_case "function_at" `Quick test_function_at;
          Alcotest.test_case "Ha16/Lo16 boundary address" `Quick test_linker_ha16_boundary;
          q prop_differential_random_programs;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "backend output roundtrips" `Quick
            test_backend_output_roundtrips;
          prop_generated_streams_roundtrip;
        ] );
    ]
