(* Unit and property tests for the ferrite_machine foundation library. *)

open Ferrite_machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:42L and b = Rng.create ~seed:42L in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.bits32 a) (Rng.bits32 b)
  done

let test_rng_split_independence () =
  (* Drawing more from the parent after a split must not perturb the child. *)
  let a = Rng.create ~seed:7L in
  let c = Rng.split a in
  let v1 = Rng.bits32 c in
  let a' = Rng.create ~seed:7L in
  let c' = Rng.split a' in
  let _ = Rng.bits32 a' in
  let _ = Rng.bits32 a' in
  check_int "split stream stable" v1 (Rng.bits32 c')

let test_rng_copy () =
  let a = Rng.create ~seed:3L in
  let _ = Rng.bits32 a in
  let b = Rng.copy a in
  check_int "copy continues identically" (Rng.bits32 a) (Rng.bits32 b)

let test_rng_derive () =
  (* counter-style derivation: pure in (seed, index), distinct across indices *)
  check_bool "deterministic" true
    (Rng.derive ~seed:11L ~index:4 = Rng.derive ~seed:11L ~index:4);
  check_bool "index-sensitive" true
    (Rng.derive ~seed:11L ~index:4 <> Rng.derive ~seed:11L ~index:5);
  check_bool "seed-sensitive" true
    (Rng.derive ~seed:11L ~index:4 <> Rng.derive ~seed:12L ~index:4);
  let a = Rng.create_derived ~seed:11L ~index:4 in
  let b = Rng.create ~seed:(Rng.derive ~seed:11L ~index:4) in
  check_int "create_derived = create of derive" (Rng.bits32 a) (Rng.bits32 b);
  match Rng.derive ~seed:1L ~index:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative index must be rejected"

let test_rng_int_range () =
  let t = Rng.create ~seed:1L in
  for _ = 1 to 10_000 do
    let v = Rng.int t 7 in
    check_bool "in range" true (v >= 0 && v < 7)
  done

let test_rng_int_uniformish () =
  let t = Rng.create ~seed:5L in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let v = Rng.int t 4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> check_bool "roughly uniform" true (abs (c - (n / 4)) < n / 20))
    counts

let test_rng_pick_weighted () =
  let t = Rng.create ~seed:9L in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.pick_weighted t [| ("a", 9.0); ("b", 1.0) |] = "a" then incr hits
  done;
  check_bool "weight respected" true (!hits > 8_500 && !hits < 9_500)

let test_rng_shuffle_permutation () =
  let t = Rng.create ~seed:11L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* ---------- Word ---------- *)

let test_word_mask () =
  check_int "mask wraps" 0 (Word.add 0xFFFFFFFF 1);
  check_int "sub wraps" 0xFFFFFFFF (Word.sub 0 1);
  check_int "mul wraps" (Word.mask (0x10000 * 0x10000)) 0

let test_word_sign () =
  check_int "sext8 neg" 0xFFFFFF80 (Word.sign_extend8 0x80);
  check_int "sext8 pos" 0x7F (Word.sign_extend8 0x7F);
  check_int "sext16 neg" 0xFFFF8000 (Word.sign_extend16 0x8000);
  check_int "signed" (-1) (Word.signed 0xFFFFFFFF)

let test_word_shifts () =
  check_int "shl" 0x80000000 (Word.shl 1 31);
  check_int "shl masks count" 2 (Word.shl 1 33);
  check_int "shr" 1 (Word.shr 0x80000000 31);
  check_int "sar sign" 0xFFFFFFFF (Word.sar 0x80000000 31);
  check_int "rotl" 1 (Word.rotl 0x80000000 1)

let test_word_bits () =
  check_bool "bit" true (Word.bit 0x8 3);
  check_int "set" 0x8 (Word.set_bit 0 3 true);
  check_int "clear" 0 (Word.set_bit 0x8 3 false);
  check_int "flip" 0x8 (Word.flip_bit 0 3);
  check_int "popcount" 32 (Word.popcount 0xFFFFFFFF)

let prop_flip_involution =
  QCheck.Test.make ~name:"flip_bit is an involution" ~count:500
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 31))
    (fun (x, i) -> Word.flip_bit (Word.flip_bit x i) i = Word.mask x)

let prop_sar_matches_signed =
  QCheck.Test.make ~name:"sar matches signed shift" ~count:500
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 31))
    (fun (x, k) -> Word.sar x k = Word.mask (Word.signed (Word.mask x) asr k))

(* ---------- Memory ---------- *)

let mk () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~size:0x2000 ~perm:Memory.perm_rw;
  m

let test_memory_rw () =
  let m = mk () in
  Memory.store32_le m 0x1000 0xDEADBEEF;
  check_int "le32" 0xDEADBEEF (Memory.load32_le m 0x1000);
  check_int "byte order le" 0xEF (Memory.load8 m 0x1000);
  Memory.store32_be m 0x1100 0xDEADBEEF;
  check_int "be32" 0xDEADBEEF (Memory.load32_be m 0x1100);
  check_int "byte order be" 0xDE (Memory.load8 m 0x1100)

let test_memory_cross_page () =
  let m = mk () in
  Memory.store32_le m 0x1FFE 0x11223344;
  check_int "crosses page boundary" 0x11223344 (Memory.load32_le m 0x1FFE)

let test_memory_unmapped () =
  let m = mk () in
  (match Memory.load8 m 0x9000 with
  | exception Memory.Fault { kind = Memory.Unmapped; access = Memory.Read; addr } ->
    check_int "fault addr" 0x9000 addr
  | _ -> Alcotest.fail "expected unmapped fault")

let test_memory_protection () =
  let m = mk () in
  Memory.set_perm m ~addr:0x1000 ~size:0x1000 ~perm:Memory.perm_ro;
  (match Memory.store8 m 0x1001 1 with
  | exception Memory.Fault { kind = Memory.Protection; access = Memory.Write; _ } -> ()
  | _ -> Alcotest.fail "expected protection fault");
  check_int "read still fine" 0 (Memory.load8 m 0x1001)

let test_memory_execute () =
  let m = mk () in
  (match Memory.fetch8 m 0x1000 with
  | exception Memory.Fault { kind = Memory.Protection; access = Memory.Execute; _ } -> ()
  | _ -> Alcotest.fail "rw page must not be executable");
  Memory.set_perm m ~addr:0x1000 ~size:0x1000 ~perm:Memory.perm_rx;
  check_int "exec ok" 0 (Memory.fetch8 m 0x1000)

let test_memory_flip_bit () =
  let m = mk () in
  Memory.poke8 m 0x1234 0b1010;
  Memory.flip_bit m ~addr:0x1234 ~bit:0;
  check_int "flip set" 0b1011 (Memory.peek8 m 0x1234);
  Memory.flip_bit m ~addr:0x1234 ~bit:0;
  check_int "flip restore" 0b1010 (Memory.peek8 m 0x1234)

let test_memory_peek_bypasses_protection () =
  let m = mk () in
  Memory.set_perm m ~addr:0x1000 ~size:0x1000 ~perm:Memory.perm_ro;
  Memory.poke8 m 0x1000 0x5A;
  check_int "poke bypasses ro" 0x5A (Memory.peek8 m 0x1000)

let test_memory_remap_preserves () =
  let m = mk () in
  Memory.store8 m 0x1000 0x7;
  Memory.map m ~addr:0x1000 ~size:16 ~perm:Memory.perm_ro;
  check_int "contents preserved" 0x7 (Memory.load8 m 0x1000)

let test_memory_auto_map () =
  let m = mk () in
  Memory.set_auto_map m ~lo:0x100000 ~hi:0x200000 ~perm:Memory.perm_rw;
  (* inside the window: materialises zero-filled *)
  check_int "demand-mapped reads zero" 0 (Memory.load8 m 0x123456);
  Memory.store32_le m 0x150000 42;
  check_int "writes stick" 42 (Memory.load32_le m 0x150000);
  (* outside the window: still faults *)
  (match Memory.load8 m 0x300000 with
  | exception Memory.Fault { kind = Memory.Unmapped; _ } -> ()
  | _ -> Alcotest.fail "outside the window must fault");
  (* peek does not auto-map *)
  (match Memory.peek8 m 0x180000 with
  | exception Memory.Fault _ -> ()
  | _ -> Alcotest.fail "peek must not demand-map")

let test_memory_auto_map_perm () =
  let m = mk () in
  Memory.set_auto_map m ~lo:0x100000 ~hi:0x200000 ~perm:Memory.perm_ro;
  check_int "read ok" 0 (Memory.load8 m 0x100000);
  (match Memory.store8 m 0x100004 1 with
  | exception Memory.Fault { kind = Memory.Protection; _ } -> ()
  | _ -> Alcotest.fail "window perm must be honoured")

let test_memory_unmap () =
  let m = mk () in
  Memory.unmap m ~addr:0x1000 ~size:0x2000;
  check_bool "unmapped" false (Memory.is_mapped m 0x1000);
  check_int "page count" 0 (Memory.snapshot_page_count m)

let test_memory_snapshot_restore () =
  let m = mk () in
  Memory.set_auto_map m ~lo:0x100000 ~hi:0x200000 ~perm:Memory.perm_rw;
  Memory.store32_le m 0x1000 0xABCD;
  let s = Memory.snapshot m in
  (* mutate everything the snapshot covers: contents, perms, page set, window *)
  Memory.store32_le m 0x1000 0xFFFF;
  Memory.set_perm m ~addr:0x1000 ~size:16 ~perm:Memory.perm_ro;
  Memory.map m ~addr:0x5000 ~size:32 ~perm:Memory.perm_rw;
  ignore (Memory.load8 m 0x150000);  (* demand-map a window page *)
  Memory.set_auto_map m ~lo:0x300000 ~hi:0x400000 ~perm:Memory.perm_ro;
  Memory.restore m s;
  check_int "contents rewound" 0xABCD (Memory.load32_le m 0x1000);
  Memory.store8 m 0x1000 1;  (* perm_rw again: must not raise *)
  check_bool "new page unmapped" false (Memory.is_mapped m 0x5000);
  check_bool "demand-mapped page unmapped" false (Memory.is_mapped m 0x150000);
  check_int "window restored" 0 (Memory.load8 m 0x123456);
  (* snapshot must not alias live pages *)
  Memory.store8 m 0x1004 0x77;
  Memory.restore m s;
  check_int "snapshot unaliased" 0 (Memory.load8 m 0x1004)

let test_memory_set_perm_partial_range () =
  (* regression: a range that runs off the mapped region must leave every
     page's permissions untouched, not downgrade the mapped prefix first *)
  let m = mk () in
  (match Memory.set_perm m ~addr:0x1000 ~size:0x3000 ~perm:Memory.perm_ro with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "set_perm over an unmapped tail must be rejected");
  Memory.store8 m 0x1000 1;  (* first page still rw *)
  Memory.store8 m 0x2FFF 2;  (* last mapped page still rw *)
  check_int "writes landed" 1 (Memory.load8 m 0x1000)

let test_memory_dirty_restore () =
  (* back-to-back restores of the same snapshot take the dirty-page path;
     the rewound state must be indistinguishable from a full restore *)
  let m = mk () in
  Memory.set_auto_map m ~lo:0x100000 ~hi:0x200000 ~perm:Memory.perm_rw;
  Memory.store32_le m 0x1000 0xABCD;
  let s = Memory.snapshot m in
  Memory.restore m s;  (* arms the dirty tracker for snapshot s *)
  let before = Memory.cache_stats m in
  Memory.store32_le m 0x1000 0xFFFF;
  Memory.store8 m 0x2400 9;
  ignore (Memory.load8 m 0x150000);  (* demand-map inside the window *)
  Memory.map m ~addr:0x7000 ~size:16 ~perm:Memory.perm_rw;
  Memory.restore m s;
  let after = Memory.cache_stats m in
  check_bool "dirty fast path taken" true
    Ferrite_machine.Cache_stats.(after.cs_restore_fast > before.cs_restore_fast);
  check_int "contents rewound" 0xABCD (Memory.load32_le m 0x1000);
  check_int "second dirty page rewound" 0 (Memory.load8 m 0x2400);
  check_bool "demand-mapped page dropped" false (Memory.is_mapped m 0x150000);
  check_bool "new page dropped" false (Memory.is_mapped m 0x7000);
  (* a restore from a different snapshot must fall back to the full walk *)
  let s2 = Memory.snapshot m in
  Memory.store8 m 0x1000 3;
  Memory.restore m s2;
  Memory.store8 m 0x1000 4;
  Memory.restore m s;
  check_int "cross-snapshot restore is full and correct" 0xABCD
    (Memory.load32_le m 0x1000)

let test_memory_fast_paths_off () =
  (* with fast paths disabled the same sequence must behave identically and
     report zero TLB/fast-restore activity *)
  Memory.set_fast_paths_default false;
  Fun.protect ~finally:(fun () -> Memory.set_fast_paths_default true) (fun () ->
      let m = mk () in
      check_bool "fast paths off" false (Memory.fast_paths m);
      Memory.store32_le m 0x1000 0xABCD;
      let s = Memory.snapshot m in
      Memory.restore m s;
      Memory.store32_le m 0x1000 0xFFFF;
      Memory.restore m s;
      check_int "restore still exact" 0xABCD (Memory.load32_le m 0x1000);
      let st = Memory.cache_stats m in
      check_int "no tlb hits" 0 st.Ferrite_machine.Cache_stats.cs_tlb_hits;
      check_int "no fast restores" 0 st.Ferrite_machine.Cache_stats.cs_restore_fast)

let test_memory_tlb_invalidation () =
  let m = mk () in
  (* warm the read TLB on the page, then change its permissions: the next
     write must fault, i.e. the stale write-class entry cannot be used *)
  ignore (Memory.load8 m 0x1000);
  Memory.store8 m 0x1000 1;
  Memory.set_perm m ~addr:0x1000 ~size:0x1000 ~perm:Memory.perm_ro;
  (match Memory.store8 m 0x1000 2 with
  | exception Memory.Fault { kind = Memory.Protection; _ } -> ()
  | _ -> Alcotest.fail "TLB must be flushed on set_perm");
  (* and after unmap the page must be gone, not served from the TLB *)
  ignore (Memory.load8 m 0x1000);
  Memory.unmap m ~addr:0x1000 ~size:0x1000;
  (match Memory.load8 m 0x1000 with
  | exception Memory.Fault { kind = Memory.Unmapped; _ } -> ()
  | _ -> Alcotest.fail "TLB must be flushed on unmap")

let prop_store_load_roundtrip =
  QCheck.Test.make ~name:"store32/load32 round trip" ~count:300
    QCheck.(pair (int_bound 0x1FF0) (int_bound 0xFFFFFF))
    (fun (off, v) ->
      let m = mk () in
      let addr = 0x1000 + off in
      Memory.store32_le m addr v;
      Memory.load32_le m addr = v)

(* ---------- Debug_regs ---------- *)

let test_dr_exec () =
  let d = Debug_regs.create () in
  Debug_regs.set_instruction_bp d 0xC0100000;
  check_bool "hit" true (Debug_regs.check_exec d 0xC0100000);
  check_bool "miss" false (Debug_regs.check_exec d 0xC0100001);
  Debug_regs.clear_all d;
  check_bool "cleared" false (Debug_regs.check_exec d 0xC0100000)

let test_dr_data_overlap () =
  let d = Debug_regs.create () in
  Debug_regs.set_data_bp d ~addr:0x2000 ~len:4;
  (match Debug_regs.check_data d ~addr:0x2002 ~len:2 ~is_write:true with
  | Some { addr; is_write } ->
    check_int "watch addr" 0x2000 addr;
    check_bool "write" true is_write
  | None -> Alcotest.fail "expected overlap hit");
  check_bool "disjoint miss" true (Debug_regs.check_data d ~addr:0x2004 ~len:4 ~is_write:false = None)

let test_dr_slots () =
  let d = Debug_regs.create () in
  for i = 1 to 4 do
    Debug_regs.set_instruction_bp d i
  done;
  (match Debug_regs.set_instruction_bp d 5 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected slot exhaustion")

(* ---------- Counters / Layout ---------- *)

let test_counters () =
  let c = Counters.create () in
  Counters.retire c ~cost:3;
  Counters.retire c ~cost:2;
  Counters.idle c 100;
  check_int "cycles" 105 c.Counters.cycles;
  check_int "instructions" 2 c.Counters.instructions;
  check_int "since" 105 (Counters.since c ~mark:0)

let test_layout () =
  check_bool "kernel addr" true (Layout.is_kernel 0xC0100000);
  check_bool "user addr" false (Layout.is_kernel 0x08048000);
  check_bool "null" true (Layout.is_null_deref 0x8);
  check_bool "not null" false (Layout.is_null_deref 0x2000);
  check_int "stack size" 8192 Layout.kernel_stack_size

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ferrite_machine"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "derive" `Quick test_rng_derive;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int uniform-ish" `Quick test_rng_int_uniformish;
          Alcotest.test_case "pick_weighted" `Quick test_rng_pick_weighted;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
        ] );
      ( "word",
        [
          Alcotest.test_case "mask" `Quick test_word_mask;
          Alcotest.test_case "sign" `Quick test_word_sign;
          Alcotest.test_case "shifts" `Quick test_word_shifts;
          Alcotest.test_case "bits" `Quick test_word_bits;
          q prop_flip_involution;
          q prop_sar_matches_signed;
        ] );
      ( "memory",
        [
          Alcotest.test_case "rw le/be" `Quick test_memory_rw;
          Alcotest.test_case "cross page" `Quick test_memory_cross_page;
          Alcotest.test_case "unmapped fault" `Quick test_memory_unmapped;
          Alcotest.test_case "protection fault" `Quick test_memory_protection;
          Alcotest.test_case "execute permission" `Quick test_memory_execute;
          Alcotest.test_case "flip bit" `Quick test_memory_flip_bit;
          Alcotest.test_case "peek/poke bypass" `Quick test_memory_peek_bypasses_protection;
          Alcotest.test_case "remap preserves" `Quick test_memory_remap_preserves;
          Alcotest.test_case "unmap" `Quick test_memory_unmap;
          Alcotest.test_case "auto-map window" `Quick test_memory_auto_map;
          Alcotest.test_case "auto-map perms" `Quick test_memory_auto_map_perm;
          Alcotest.test_case "snapshot/restore" `Quick test_memory_snapshot_restore;
          Alcotest.test_case "set_perm partial range" `Quick test_memory_set_perm_partial_range;
          Alcotest.test_case "dirty restore" `Quick test_memory_dirty_restore;
          Alcotest.test_case "fast paths off" `Quick test_memory_fast_paths_off;
          Alcotest.test_case "tlb invalidation" `Quick test_memory_tlb_invalidation;
          q prop_store_load_roundtrip;
        ] );
      ( "debug_regs",
        [
          Alcotest.test_case "exec bp" `Quick test_dr_exec;
          Alcotest.test_case "data overlap" `Quick test_dr_data_overlap;
          Alcotest.test_case "slot limit" `Quick test_dr_slots;
        ] );
      ( "counters+layout",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "layout" `Quick test_layout;
        ] );
    ]
