(* Scenario tests reproducing the paper's worked examples:
   Figure 8  (P4 stack error in kupdate's task pointer),
   Figure 9  (G4 stack error in kjournald),
   Figure 15 (G4 code error: mflr -> lhax),
   and the crash-dump ("oops") machinery used to analyse them. *)

open Ferrite_kernel
open Ferrite_injection
module Image = Ferrite_kir.Image
module Rng = Ferrite_machine.Rng
module Workload = Ferrite_workload.Workload
module Runner = Ferrite_workload.Runner

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_target sys target ~seed ~ops =
  let rng = Rng.create ~seed in
  let wl = Workload.mix ~ops () in
  let runner = Runner.create sys ~ops:(wl.Workload.wl_ops rng) in
  let collector = Collector.create ~loss_rate:0.0 ~seed:3L () in
  Engine.run_one ~sys ~runner ~target ~collector Engine.default_config

(* --- Figure 8: stack errors in the kupdate task (P4) -------------------- *)

let test_figure8_kupdate_stack_errors () =
  (* kupdate is task 1; inject into the live words of its sleeping stack.
     Across a seeded batch, some errors must manifest as invalid memory
     accesses (the Figure 8 outcome), and the faults must be attributable. *)
  let image = Boot.build_image Image.Cisc in
  let crashes = ref 0 and outcomes = ref 0 in
  for i = 0 to 39 do
    let sys = Boot.boot ~image Image.Cisc in
    let sp = System.task_field sys 1 "sp" in
    let addr = (sp + 4 * (i mod 12)) land lnot 3 in
    let target = Target.Stack_target { task = 1; addr; bit = (i * 7) mod 32 } in
    let record = run_target sys target ~seed:(Int64.of_int (100 + i)) ~ops:10 in
    incr outcomes;
    match record.Outcome.r_outcome with
    | Outcome.Known_crash { ci_cause = Crash_cause.P4 c; _ } ->
      incr crashes;
      check_bool "P4 stack crash kinds are Table 3 categories" true
        (match c with
        | Crash_cause.Null_pointer | Crash_cause.Bad_paging | Crash_cause.Invalid_instruction
        | Crash_cause.General_protection | Crash_cause.Kernel_panic | Crash_cause.Invalid_tss
        | Crash_cause.Divide_error | Crash_cause.Bounds_trap -> true)
    | _ -> ()
  done;
  check_int "ran the batch" 40 !outcomes;
  check_bool "some kupdate-stack errors crash (Figure 8)" true (!crashes >= 3)

(* --- Figure 9: stack errors in the kjournald task (G4) ------------------ *)

let test_figure9_kjournald_stack_errors () =
  let image = Boot.build_image Image.Risc in
  let crashes = ref 0 and stack_or_area = ref 0 in
  for i = 0 to 39 do
    let sys = Boot.boot ~image Image.Risc in
    let sp = System.task_field sys 2 "sp" in
    let addr = (sp + 4 * (i mod 12)) land lnot 3 in
    let target = Target.Stack_target { task = 2; addr; bit = (i * 5) mod 32 } in
    let record = run_target sys target ~seed:(Int64.of_int (200 + i)) ~ops:10 in
    match record.Outcome.r_outcome with
    | Outcome.Known_crash { ci_cause = Crash_cause.G4 c; _ } ->
      incr crashes;
      (match c with
      | Crash_cause.Bad_area | Crash_cause.Stack_overflow -> incr stack_or_area
      | _ -> ())
    | _ -> ()
  done;
  check_bool "some kjournald-stack errors crash (Figure 9)" true (!crashes >= 3);
  check_bool "dominated by bad area / stack overflow" true (!stack_or_area * 2 >= !crashes)

(* --- Figure 15: mflr -> lhax in a kernel prologue (G4) ------------------- *)

let find_word sys fn w =
  let f = Image.find_func sys.System.image fn in
  let rec go addr =
    if addr >= f.Image.fs_addr + f.Image.fs_size then None
    else if System.peek32 sys addr = w then Some addr
    else go (addr + 4)
  in
  go f.Image.fs_addr

let test_figure15_mflr_to_lhax () =
  let sys = Boot.boot Image.Risc in
  (* the paper's exact words: mflr r0 = 0x7C0802A6; bit 3 makes lhax r0,r8,r0 *)
  match find_word sys "sys_read" 0x7C0802A6 with
  | None -> Alcotest.fail "sys_read has no mflr r0 in its prologue"
  | Some addr ->
    (* code flips use the same arch-aware addressing as word flips: bit 3 is
       the instruction word's bit 3 on both architectures *)
    let target = Target.Code_target { fn = "sys_read"; addr; bit = 3 } in
    let record = run_target sys target ~seed:555L ~ops:14 in
    check_bool "the flip was reached" true record.Outcome.r_activated;
    (* verify the decoded corruption is exactly lhax r0,r8,r0 *)
    (match Ferrite_risc.Decode.word (System.peek32 sys addr) with
    | Ferrite_risc.Insn.Load_idx ({ algebraic = true; _ }, 0, 8, 0) -> ()
    | _ -> Alcotest.fail "corrupted word is not lhax r0,r8,r0");
    (match record.Outcome.r_outcome with
    | Outcome.Known_crash { ci_cause = Crash_cause.G4 c; _ } ->
      check_bool "crash in a Table 4 category" true
        (match c with
        | Crash_cause.Bad_area | Crash_cause.Stack_overflow | Crash_cause.Illegal_instruction
        | Crash_cause.Panic -> true
        | _ -> false)
    | Outcome.Hang | Outcome.Unknown_crash -> ()
    | o -> Alcotest.failf "unexpected outcome %s" (Outcome.outcome_label o))

(* --- golden replays across --jobs ---------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The Figs. 7/13/14 replays must render byte-identically for every --jobs
   value a user can pass on the CLI, not just for the two executor
   constructors: [Executor.of_jobs] clamps and normalises, so each jobs
   count exercises its own worker split. *)
let test_figures_identical_across_jobs () =
  List.iter
    (fun sc ->
      let name = sc.Ferrite.Scenario.sc_name in
      let render jobs =
        Ferrite.Scenario.render
          (Ferrite.Scenario.run ~executor:(Executor.of_jobs jobs) sc)
      in
      let golden = read_file (Filename.concat "golden" (name ^ ".trace")) in
      List.iter
        (fun jobs ->
          Alcotest.(check string)
            (Printf.sprintf "%s with --jobs %d matches the golden file" name jobs)
            golden (render jobs))
        [ 1; 2; 4 ])
    Ferrite.Scenario.all

(* --- oops rendering ------------------------------------------------------- *)

let force_fault arch =
  let sys = Boot.boot arch in
  let s = System.symbol sys "mailbox" in
  (* corrupt the syscall table entry for getpid to a small bogus pointer so
     the dispatcher's indirect call jumps to NULL-land *)
  let table = System.symbol sys "syscall_table" in
  System.poke32 sys table 0x00000010;
  System.poke32 sys (s + 4) Abi.sys_getpid;
  System.poke32 sys s Abi.req_pending;
  let rec go n =
    if n = 0 then Alcotest.fail "no fault"
    else match System.step sys with System.Faulted f -> (sys, f) | _ -> go (n - 1)
  in
  go 2_000_000

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_oops_p4 () =
  let sys, fault = force_fault Image.Cisc in
  let text = Oops.render sys fault in
  check_bool "banner style" true
    (contains text "Unable to handle kernel"
    || contains text "invalid operand"
    || contains text "general protection");
  check_bool "registers shown" true (contains text "eip: ");
  check_bool "symbolised" true (contains text "EIP/PC is at");
  check_bool "stack dump" true (contains text "Stack:")

let test_oops_g4 () =
  let sys, fault = force_fault Image.Risc in
  let text = Oops.render sys fault in
  check_bool "banner style" true
    (contains text "bad area" || contains text "illegal instruction");
  check_bool "registers shown" true (contains text "r31:" || contains text "r0 :");
  check_bool "pc line" true (contains text "pc : ")

let test_oops_banner_null_vs_paging () =
  let sys = Boot.boot Image.Cisc in
  let null_fault =
    System.Cisc_fault (Ferrite_cisc.Exn.Page_fault { addr = 0x8; write = false; fetch = false })
  in
  check_bool "NULL wording" true (contains (Oops.banner sys null_fault) "NULL pointer");
  let paging_fault =
    System.Cisc_fault
      (Ferrite_cisc.Exn.Page_fault { addr = 0x170FC2A5; write = false; fetch = false })
  in
  let b = Oops.banner sys paging_fault in
  check_bool "paging wording (the Figure 7 message)" true
    (contains b "paging request at virtual address 170fc2a5")

let test_banner_survives_stripped_panic_code () =
  (* regression: the banner used to read the [panic_code] global unguarded,
     so an image without that symbol (stripped or ablated builds) raised
     Invalid_argument from inside the crash path instead of rendering. *)
  let sys = Boot.boot Image.Cisc in
  Hashtbl.remove sys.System.image.Image.img_symtab "panic_code";
  (match Oops.banner sys (System.Cisc_fault Ferrite_cisc.Exn.Invalid_opcode) with
  | b -> check_bool "generic CISC wording" true (contains b "invalid operand")
  | exception e -> Alcotest.failf "CISC banner raised %s" (Printexc.to_string e));
  let rsys = Boot.boot Image.Risc in
  Hashtbl.remove rsys.System.image.Image.img_symtab "panic_code";
  (match Oops.banner rsys (System.Risc_fault Ferrite_risc.Exn.Program_trap) with
  | b -> check_bool "generic RISC wording" true (contains b "kernel BUG")
  | exception e -> Alcotest.failf "RISC banner raised %s" (Printexc.to_string e))

let test_stack_dump_golden_format () =
  (* golden format: one space before every word, a newline after every row —
     including a trailing partial one. The pre-fix renderer doubled the
     leading space on full rows and left partial rows without a newline. *)
  let sys = Boot.boot Image.Cisc in
  let sp = 0xC0802000 in
  (match sys.System.cpu with
  | System.Ccpu c -> c.Ferrite_cisc.Cpu.regs.(Ferrite_cisc.Cpu.esp) <- sp
  | _ -> assert false);
  for i = 0 to 5 do
    System.poke32 sys (sp + (4 * i)) (0xC0000000 + i)
  done;
  Alcotest.(check string) "six-word dump (partial second row)"
    "Stack: (esp/r1 = c0802000)\n\
    \ c0000000 c0000001 c0000002 c0000003\n\
    \ c0000004 c0000005\n"
    (Oops.stack_dump ~words:6 sys)

let test_stack_overflow_signature () =
  let sys = Boot.boot Image.Cisc in
  (* fabricate the Figure 7 pattern: a repeating 4-word cycle of text
     addresses above ESP *)
  (match sys.System.cpu with
  | System.Ccpu c ->
    let sp = 0xC0802000 in
    c.Ferrite_cisc.Cpu.regs.(Ferrite_cisc.Cpu.esp) <- sp;
    let text = sys.System.image.Image.img_text_base in
    for i = 0 to 31 do
      System.poke32 sys (sp + (4 * i)) (text + 0x100 + (16 * (i mod 4)))
    done;
    check_bool "signature detected" true (Oops.stack_overflow_signature sys);
    (* scramble: no repetition -> no signature *)
    for i = 0 to 31 do
      System.poke32 sys (sp + (4 * i)) (text + (i * 52))
    done;
    check_bool "no false positive" false (Oops.stack_overflow_signature sys)
  | _ -> assert false)

let () =
  Alcotest.run "ferrite_scenarios"
    [
      ( "paper figures",
        [
          Alcotest.test_case "Figure 8: kupdate stack (P4)" `Quick test_figure8_kupdate_stack_errors;
          Alcotest.test_case "Figure 9: kjournald stack (G4)" `Quick test_figure9_kjournald_stack_errors;
          Alcotest.test_case "Figure 15: mflr->lhax (G4)" `Quick test_figure15_mflr_to_lhax;
          Alcotest.test_case "Figs. 7/13/14 golden across --jobs 1/2/4" `Quick
            test_figures_identical_across_jobs;
        ] );
      ( "oops",
        [
          Alcotest.test_case "P4 oops" `Quick test_oops_p4;
          Alcotest.test_case "G4 oops" `Quick test_oops_g4;
          Alcotest.test_case "NULL vs paging banner" `Quick test_oops_banner_null_vs_paging;
          Alcotest.test_case "banner without panic_code symbol" `Quick
            test_banner_survives_stripped_panic_code;
          Alcotest.test_case "stack dump golden format" `Quick test_stack_dump_golden_format;
          Alcotest.test_case "Fig. 7 stack signature" `Quick test_stack_overflow_signature;
        ] );
    ]
