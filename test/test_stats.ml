(* Tests for the statistics library: latency histograms over the paper's
   Figure 16 buckets, table/figure rendering, and distribution utilities. *)

module Hist = Ferrite_stats.Latency_histogram
module Table = Ferrite_stats.Table
module Figure = Ferrite_stats.Figure
module Dist = Ferrite_stats.Dist

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ---------- histogram ---------- *)

let test_bucket_boundaries () =
  check_int "<3k" 0 (Hist.bucket_of 0);
  check_int "2999" 0 (Hist.bucket_of 2_999);
  check_int "3000 starts next" 1 (Hist.bucket_of 3_000);
  check_int "9999" 1 (Hist.bucket_of 9_999);
  check_int "10k" 2 (Hist.bucket_of 10_000);
  check_int "1M" 4 (Hist.bucket_of 1_000_000);
  check_int "999,999,999" 6 (Hist.bucket_of 999_999_999);
  check_int ">1G" 7 (Hist.bucket_of 2_000_000_000);
  check_int "labels match buckets" Hist.bucket_count (List.length Hist.bucket_labels)

let test_histogram_counts () =
  let h = Hist.of_list [ 100; 200; 5_000; 50_000; 50_001; 2_000_000_000 ] in
  check_int "total" 6 (Hist.total h);
  let c = Hist.counts h in
  check_int "bucket0" 2 c.(0);
  check_int "bucket1" 1 c.(1);
  check_int "bucket2" 2 c.(2);
  check_int "bucket7" 1 c.(7)

let test_fraction_below () =
  let h = Hist.of_list [ 100; 200; 5_000; 50_000 ] in
  check_float "below 3k" 0.5 (Hist.fraction_below h ~cycles:3_000);
  check_float "below 10k" 0.75 (Hist.fraction_below h ~cycles:10_000);
  check_float "empty" 0.0 (Hist.fraction_below (Hist.create ()) ~cycles:3_000)

let test_fraction_below_interpolates () =
  (* regression: fraction_below used to truncate to bucket granularity — the
     4,000-cycle sample below the 5,000 threshold was dropped along with the
     rest of its 3k-10k bucket, reporting 1/3 here instead of the
     interpolated (1 + 2/7 * 2) / 3 = 11/21. *)
  let h = Hist.of_list [ 1_000; 4_000; 6_000 ] in
  check_float "interpolated" (11.0 /. 21.0) (Hist.fraction_below h ~cycles:5_000);
  (* exact bucket bounds: the share term is zero, so the pre-fix values are
     preserved (the Fig. 8/9 shape checks call at 3k/10k/100k exactly) *)
  check_float "exact bound 3k" (1.0 /. 3.0) (Hist.fraction_below h ~cycles:3_000);
  check_float "exact bound 10k" 1.0 (Hist.fraction_below h ~cycles:10_000);
  (* the open-ended >1G bucket has no width to interpolate over: the value
     snaps down to the closed buckets' sum *)
  let g = Hist.of_list [ 100; 2_000_000_000 ] in
  check_float "open-ended bucket" 0.5 (Hist.fraction_below g ~cycles:3_000_000_000)

let test_merge () =
  let a = Hist.of_list [ 1; 2 ] and b = Hist.of_list [ 5_000 ] in
  let m = Hist.merge a b in
  check_int "merged total" 3 (Hist.total m);
  check_int "bucket0" 2 (Hist.counts m).(0)

let prop_fractions_sum_to_one =
  QCheck.Test.make ~name:"fractions sum to 1" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (int_bound 2_000_000))
    (fun samples ->
      let h = Hist.of_list samples in
      let s = Array.fold_left ( +. ) 0.0 (Hist.fractions h) in
      abs_float (s -. 1.0) < 1e-9)

(* ---------- tables ---------- *)

let test_table_render_plain () =
  let t = Table.render ~header:[ "name"; "value" ] [ [ "alpha"; "1" ]; [ "beta"; "22" ] ] in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "header present" true (contains t "name");
  check_bool "cells present" true (contains t "alpha" && contains t "22");
  check_bool "ruled" true (contains t "+--");
  (* short rows are padded, long rows truncated *)
  let t2 = Table.render ~header:[ "a"; "b" ] [ [ "only" ] ] in
  check_bool "short row ok" true (contains t2 "only")

let test_table_grouped_long_label () =
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  (* a group label far wider than the columns (a Density_weighted targeting
     tag spells out its whole table): the table widens instead of silently
     chopping the label *)
  let label = "density:fs=0.30,mm=0.25,net=0.20,drivers=0.15,kernel=0.10" in
  let t =
    Table.render_grouped ~header:[ "a"; "b" ]
      [ (label, [ [ "x"; "1" ] ]); ("short", [ [ "y"; "2" ] ]) ]
  in
  check_bool "long label intact" true (contains t label);
  check_bool "short label intact" true (contains t "short");
  (* every line of the box stays the same width *)
  let lines = String.split_on_char '\n' t in
  let w = String.length (List.hd lines) in
  List.iter (fun l -> check_bool "uniform width" true (String.length l = w)) lines

let test_pct_formatting () =
  Alcotest.(check string) "pct" "50.0%" (Table.pct 1 2);
  Alcotest.(check string) "zero denominator" "-" (Table.pct 1 0);
  Alcotest.(check string) "count pct" "3 (30.0%)" (Table.count_pct 3 10)

(* ---------- figures ---------- *)

let test_figure_bars () =
  let s = Figure.bars ~title:"demo" [ ("aa", 0.5); ("b", 1.0) ] in
  let lines = String.split_on_char '\n' s in
  check_bool "title first" true (List.hd lines = "demo");
  check_bool "full bar has width hashes" true
    (List.exists
       (fun l ->
         let hashes = String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 l in
         hashes = 40)
       lines)

let test_figure_distribution_counts () =
  let s = Figure.distribution ~title:"d" [ ("x", 3); ("y", 1) ] in
  let contains sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "total shown" true (contains "(total 4)");
  check_bool "percent shown" true (contains "75.0%")

let test_side_by_side () =
  let s = Figure.side_by_side "aa\nbb" "XX\nYY\nZZ" in
  let lines = String.split_on_char '\n' s in
  check_bool "first line joins" true
    (match lines with l :: _ -> String.length l > 4 | [] -> false);
  check_int "uses max height (+ trailing)" 4 (List.length lines)

(* ---------- dist ---------- *)

let test_normalize () =
  let f = Dist.normalize [| 1; 3 |] in
  check_float "1/4" 0.25 f.(0);
  check_float "3/4" 0.75 f.(1);
  let z = Dist.normalize [| 0; 0 |] in
  check_float "zeros stay zero" 0.0 z.(0)

let test_total_variation () =
  check_float "identical" 0.0 (Dist.total_variation [| 0.5; 0.5 |] [| 0.5; 0.5 |]);
  check_float "disjoint" 1.0 (Dist.total_variation [| 1.0; 0.0 |] [| 0.0; 1.0 |]);
  (match Dist.total_variation [| 1.0 |] [| 0.5; 0.5 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted")

let test_winner_and_fraction () =
  let counts = [ ("a", 3); ("b", 7); ("c", 1) ] in
  check_bool "winner" true (Dist.winner counts = Some "b");
  check_float "fraction" (7.0 /. 11.0) (Dist.fraction_of counts "b");
  check_bool "empty winner" true (Dist.winner ([] : (string * int) list) = None)

let test_wilson () =
  let lo, hi = Dist.wilson_interval ~successes:50 ~trials:100 in
  check_bool "contains p" true (lo < 0.5 && hi > 0.5);
  check_bool "reasonable width" true (hi -. lo < 0.25);
  let lo0, hi0 = Dist.wilson_interval ~successes:0 ~trials:0 in
  check_float "no data lo" 0.0 lo0;
  check_float "no data hi" 1.0 hi0

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ferrite_stats"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "counts" `Quick test_histogram_counts;
          Alcotest.test_case "fraction_below" `Quick test_fraction_below;
          Alcotest.test_case "fraction_below interpolates" `Quick
            test_fraction_below_interpolates;
          Alcotest.test_case "merge" `Quick test_merge;
          q prop_fractions_sum_to_one;
        ] );
      ( "tables",
        [
          Alcotest.test_case "render" `Quick test_table_render_plain;
          Alcotest.test_case "grouped long label" `Quick test_table_grouped_long_label;
          Alcotest.test_case "pct" `Quick test_pct_formatting;
        ] );
      ( "figures",
        [
          Alcotest.test_case "bars" `Quick test_figure_bars;
          Alcotest.test_case "distribution" `Quick test_figure_distribution_counts;
          Alcotest.test_case "side by side" `Quick test_side_by_side;
        ] );
      ( "dist",
        [
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "total variation" `Quick test_total_variation;
          Alcotest.test_case "winner/fraction" `Quick test_winner_and_fraction;
          Alcotest.test_case "wilson interval" `Quick test_wilson;
        ] );
    ]
