(* Columnar result store: encoding roundtrips, framing/torn-tail recovery,
   cross-session append, executor invariance of the file bytes, and the
   byte-identity of store-backed reporting against the in-memory tables. *)

open Ferrite_injection
module Image = Ferrite_kir.Image
module Store = Ferrite_store.Store

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let tmp_store () = Filename.temp_file "ferrite_store" ".fstore"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Edge-value rows: varint length boundaries, zigzag option sentinels, empty
   and control-character strings through the dictionary layer. *)
let edge_rows =
  [
    {
      Store.r_index = 0; r_arch = "cisc"; r_kind = "stack"; r_model = "single_bit";
      r_outcome = "Known Crash"; r_activated = true; r_activation_cycle = Some 0;
      r_cause = Some ""; r_latency = Some 127; r_pc = Some 0xFFFF_FFFF;
      r_function = Some "free_pages_ok+0x70"; r_triage = Some "stack_overwrite";
    };
    {
      Store.r_index = 1; r_arch = "risc"; r_kind = "code"; r_model = "burst:4";
      r_outcome = "Not Manifested"; r_activated = false; r_activation_cycle = None;
      r_cause = None; r_latency = Some 128; r_pc = None; r_function = Some "\x01odd";
      r_triage = None;
    };
    {
      Store.r_index = 0x7FFF_FFFF; r_arch = "cisc"; r_kind = "data"; r_model = "single_bit";
      r_outcome = "Hang"; r_activated = true; r_activation_cycle = Some 0x3FFF_FFFF_FFFF;
      r_cause = None; r_latency = None; r_pc = Some 0; r_function = None;
      r_triage = Some "silent_drop";
    };
  ]

let test_roundtrip () =
  let path = tmp_store () in
  let w = Store.create path in
  List.iter (Store.append w) edge_rows;
  Store.close w;
  let rows, scan = Store.read_all path in
  check_bool "rows roundtrip" true (rows = edge_rows);
  check_int "scan rows" 3 scan.Store.sc_rows;
  check_int "one block" 1 scan.Store.sc_blocks;
  check_int "no torn tail" 0 scan.Store.sc_truncated_bytes;
  Sys.remove path

let test_tiny_blocks () =
  (* block_rows:2 over 8 rows forces four flushed blocks *)
  let path = tmp_store () in
  let many = List.concat [ edge_rows; edge_rows; List.tl edge_rows ] in
  let w = Store.create ~block_rows:2 path in
  List.iter (Store.append w) many;
  check_int "rows_written counts buffered rows" 8 (Store.rows_written w);
  Store.close w;
  let rows, scan = Store.read_all path in
  check_bool "multi-block roundtrip" true (rows = many);
  check_int "four blocks" 4 scan.Store.sc_blocks;
  Sys.remove path

let test_torn_tail_recovery () =
  let path = tmp_store () in
  let w = Store.create ~block_rows:2 path in
  List.iter (Store.append w) edge_rows;
  Store.close w;
  let intact = Store.scan path in
  (* garbage after the last valid frame: reader keeps the valid prefix *)
  write_file path (read_file path ^ "torn!");
  let rows, scan = Store.read_all path in
  check_int "all rows survive garbage tail" 3 (List.length rows);
  check_int "tail counted" 5 scan.Store.sc_truncated_bytes;
  (* cut inside the final frame: its rows are lost, earlier blocks survive *)
  write_file path (String.sub (read_file path) 0 (intact.Store.sc_bytes - 3));
  let rows, scan = Store.read_all path in
  check_int "first block survives a mid-frame cut" 2 (List.length rows);
  check_bool "cut tail counted" true (scan.Store.sc_truncated_bytes > 0);
  Sys.remove path

let test_append_across_sessions () =
  let path = tmp_store () in
  let w = Store.create path in
  List.iter (Store.append w) edge_rows;
  Store.close w;
  (* second session appends; third opens a store with a torn tail, which
     open_append truncates before continuing *)
  let w = Store.open_append path in
  check_int "existing rows counted" 3 (Store.rows_written w);
  List.iter (Store.append w) edge_rows;
  Store.close w;
  write_file path (read_file path ^ "half-written frame");
  let w = Store.open_append path in
  List.iter (Store.append w) (List.tl edge_rows);
  Store.close w;
  let rows, scan = Store.read_all path in
  check_bool "all three sessions readable" true
    (rows = List.concat [ edge_rows; edge_rows; List.tl edge_rows ]);
  check_int "no residual torn tail" 0 scan.Store.sc_truncated_bytes;
  Sys.remove path

(* The concurrency contract (store.mli): concurrent appenders on one path
   interleave whole blocks, never spliced bytes — every row survives exactly
   once and each writer's rows keep their order. Two children open the store
   before either appends (truncation must not race live appends), rendezvous
   over pipes, then race 20 rows each through tiny 3-row blocks. *)
let test_concurrent_append () =
  let path = tmp_store () in
  Store.close (Store.create path);
  let rows_for base n =
    List.init n (fun i ->
        { (List.nth edge_rows (i mod 3)) with Store.r_index = base + i })
  in
  let spawn base n =
    let ready_r, ready_w = Unix.pipe () in
    let go_r, go_w = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
      Unix.close ready_r;
      Unix.close go_w;
      let w = Store.open_append ~block_rows:3 path in
      ignore (Unix.write ready_w (Bytes.of_string "r") 0 1);
      ignore (Unix.read go_r (Bytes.create 1) 0 1);
      List.iter (Store.append w) (rows_for base n);
      Store.close w;
      Unix._exit 0
    | pid ->
      Unix.close ready_w;
      Unix.close go_r;
      ignore (Unix.read ready_r (Bytes.create 1) 0 1);
      Unix.close ready_r;
      (pid, go_w)
  in
  let a = spawn 0 20 in
  let b = spawn 1000 20 in
  List.iter (fun (_, go) -> ignore (Unix.write go (Bytes.of_string "g") 0 1)) [ a; b ];
  List.iter
    (fun (pid, go) ->
      Unix.close go;
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "concurrent appender died")
    [ a; b ];
  let rows, scan = Store.read_all path in
  check_int "every row survives exactly once" 40 (List.length rows);
  check_int "no spliced or torn bytes" 0 scan.Store.sc_truncated_bytes;
  check_int "fourteen whole blocks" 14 scan.Store.sc_blocks;
  let by_writer base = List.filter (fun r -> r.Store.r_index >= base && r.Store.r_index < base + 1000) rows in
  check_bool "writer A's rows keep their order" true (by_writer 0 = rows_for 0 20);
  check_bool "writer B's rows keep their order" true (by_writer 1000 = rows_for 1000 20);
  Sys.remove path

let test_not_a_store () =
  let path = tmp_store () in
  write_file path "NOTASTOREFILE....";
  (match Store.read_all path with
  | exception Store.Not_a_store _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  Sys.remove path

(* ---------- campaign integration ---------- *)

let campaign kind injections =
  Campaign.default ~arch:Image.Cisc ~kind ~injections

let write_result path result =
  let w = Store.create path in
  Result_store.append_result w result;
  Store.close w

let test_store_bytes_executor_invariant () =
  (* same campaign, sequential vs parallel: byte-identical store files (rows
     are merged in trial order and dictionaries are first-appearance) *)
  let cfg = { (campaign Target.Data 30) with Campaign.seed = 0xF00DL } in
  let p1 = tmp_store () and p4 = tmp_store () in
  write_result p1 (Campaign.run ~executor:Executor.Sequential cfg);
  write_result p4 (Campaign.run ~executor:(Executor.Parallel { domains = 4 }) cfg);
  check_string "store bytes identical across executors" (read_file p1) (read_file p4);
  Sys.remove p1;
  Sys.remove p4

let test_aggregate_matches_in_memory () =
  let cfg = campaign Target.Code 40 in
  let result = Campaign.run cfg in
  let path = tmp_store () in
  write_result path result;
  let aggs, scan = Result_store.aggregate path in
  check_int "rows = injections" 40 scan.Store.sc_rows;
  (match Result_store.find_agg aggs ~arch:Image.Cisc ~kind:Target.Code with
  | None -> Alcotest.fail "campaign agg missing"
  | Some agg ->
    check_bool "summary identical" true (agg.Result_store.ag_summary = Campaign.summarize result);
    check_bool "model summaries identical" true
      (agg.Result_store.ag_models
      = List.map
          (fun (m, rs) -> (m, Campaign.summarize_records ~kind:cfg.Campaign.kind rs))
          (Campaign.group_by_model result));
    check_bool "latencies identical" true
      (agg.Result_store.ag_latencies = Campaign.latencies result);
    let triaged = List.fold_left (fun n (_, c) -> n + c) 0 agg.Result_store.ag_triage in
    let failures =
      List.fold_left
        (fun n (r, d) -> if Triage.of_record r d <> None then n + 1 else n)
        0
        (List.combine result.Campaign.records result.Campaign.dumps)
    in
    check_int "every failure triaged" failures triaged);
  Sys.remove path

(* The acceptance bar: a >=10^5-row store whose Table 5 renders byte-identical
   to the in-memory table over the same records. Campaign records are
   replicated row-wise (a pure data operation), so both sides tally the same
   100k+ records — the store path streams them back through [aggregate]. *)
let test_table5_byte_identical_at_scale () =
  let kinds =
    [
      ("Stack", Target.Stack, 40); ("System Registers", Target.Register, 40);
      ("Data", Target.Data, 40); ("Code", Target.Code, 40);
    ]
  in
  let results =
    List.map (fun (name, kind, n) -> (name, kind, Campaign.run (campaign kind n))) kinds
  in
  let copies = 700 (* 4 kinds x 40 rows x 700 = 112,000 rows *) in
  let path = tmp_store () in
  let w = Store.create path in
  List.iter
    (fun (_, kind, res) ->
      let rows = List.combine res.Campaign.records res.Campaign.dumps in
      for copy = 0 to copies - 1 do
        List.iteri
          (fun i (record, dump) ->
            Store.append w
              (Result_store.row_of ~arch:Image.Cisc ~kind
                 ~index:((copy * List.length rows) + i)
                 record dump))
          rows
      done)
    results;
  Store.close w;
  let aggs, scan = Result_store.aggregate path in
  check_int "store holds 112k rows" 112_000 scan.Store.sc_rows;
  let in_memory =
    Ferrite.Report.table5_of
      (List.map
         (fun (name, kind, res) ->
           let replicated =
             List.concat (List.init copies (fun _ -> res.Campaign.records))
           in
           (name, Campaign.summarize_records ~kind replicated))
         results)
  in
  let from_store =
    Ferrite.Report.table5_of
      (List.map
         (fun (name, kind, _) ->
           match Result_store.find_agg aggs ~arch:Image.Cisc ~kind with
           | Some agg -> (name, agg.Result_store.ag_summary)
           | None -> Alcotest.failf "missing agg for %s" name)
         results)
  in
  check_string "Table 5 byte-identical from the store" in_memory from_store;
  Sys.remove path

let () =
  Alcotest.run "ferrite_store"
    [
      ( "framing",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "tiny blocks" `Quick test_tiny_blocks;
          Alcotest.test_case "torn tail" `Quick test_torn_tail_recovery;
          Alcotest.test_case "append across sessions" `Quick test_append_across_sessions;
          Alcotest.test_case "concurrent appenders" `Quick test_concurrent_append;
          Alcotest.test_case "bad magic" `Quick test_not_a_store;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "executor-invariant bytes" `Quick test_store_bytes_executor_invariant;
          Alcotest.test_case "aggregate = in-memory" `Quick test_aggregate_matches_in_memory;
          Alcotest.test_case "Table 5 byte-identity at 112k rows" `Slow
            test_table5_byte_identical_at_scale;
        ] );
    ]
