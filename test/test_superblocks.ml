(* The superblock translation layer must be a pure acceleration: outside the
   injection window straight-line code runs as flattened micro-op arrays, but
   every observable — records, telemetry, event traces, store bytes — must be
   bit-identical to the precise per-step interpreter. A differential qcheck
   property replays whole campaigns with superblocks disabled
   ([Memory.set_superblocks_default false]) across fault models and executor
   widths; unit tests pin each precise-fallback edge (self-modifying stores,
   mid-block exceptions, armed breakpoints, block-boundary branches) and the
   overflow/monotonicity contract of the diagnostic counters. *)

open Ferrite_machine
module Campaign = Ferrite_injection.Campaign
module Executor = Ferrite_injection.Executor
module Engine = Ferrite_injection.Engine
module Target = Ferrite_injection.Target
module Fault_model = Ferrite_injection.Fault_model
module Image = Ferrite_kir.Image
module Boot = Ferrite_kernel.Boot
module System = Ferrite_kernel.System

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let code_base = 0xC0100000
let stop_addr = 0xFFFF0000

(* --- differential pairs: one CPU translated, one precise ------------------ *)

(* Both CPUs see the same memory image and are driven through [Cpu.run]; only
   [sb_enabled] differs. Every architecturally visible observable must agree:
   result, retired count, pc, registers, and the counter stamps. *)

let risc_pair setup =
  let make sb =
    let mem = Memory.create () in
    Memory.map mem ~addr:code_base ~size:0x2000 ~perm:Memory.perm_rwx;
    let cpu = Ferrite_risc.Cpu.create ~mem ~stop_addr in
    cpu.Ferrite_risc.Cpu.sb_enabled <- sb;
    setup mem cpu;
    cpu
  in
  (make true, make false)

let cisc_pair setup =
  let make sb =
    let mem = Memory.create () in
    Memory.map mem ~addr:code_base ~size:0x2000 ~perm:Memory.perm_rwx;
    let cpu = Ferrite_cisc.Cpu.create ~mem ~stop_addr in
    cpu.Ferrite_cisc.Cpu.sb_enabled <- sb;
    setup mem cpu;
    cpu
  in
  (make true, make false)

let check_risc_agree msg (a : Ferrite_risc.Cpu.t) (b : Ferrite_risc.Cpu.t) =
  check_int (msg ^ ": pc") b.Ferrite_risc.Cpu.pc a.Ferrite_risc.Cpu.pc;
  for i = 0 to 31 do
    check_int
      (Printf.sprintf "%s: r%d" msg i)
      b.Ferrite_risc.Cpu.gpr.(i) a.Ferrite_risc.Cpu.gpr.(i)
  done;
  let ca = Counters.stamp a.Ferrite_risc.Cpu.counters in
  let cb = Counters.stamp b.Ferrite_risc.Cpu.counters in
  Alcotest.(check (pair int int)) (msg ^ ": counters") cb ca

let check_cisc_agree msg (a : Ferrite_cisc.Cpu.t) (b : Ferrite_cisc.Cpu.t) =
  check_int (msg ^ ": eip") b.Ferrite_cisc.Cpu.eip a.Ferrite_cisc.Cpu.eip;
  for i = 0 to 7 do
    check_int
      (Printf.sprintf "%s: reg%d" msg i)
      b.Ferrite_cisc.Cpu.regs.(i) a.Ferrite_cisc.Cpu.regs.(i)
  done;
  let ca = Counters.stamp a.Ferrite_cisc.Cpu.counters in
  let cb = Counters.stamp b.Ferrite_cisc.Cpu.counters in
  Alcotest.(check (pair int int)) (msg ^ ": counters") cb ca

(* --- fallback edge: self-modifying code mid-block ------------------------- *)

(* A store inside a superblock overwrites a later instruction of the same
   block. The store-generation check must abandon the stale block after the
   store retires, so the rewritten bytes — not the flattened copy — execute. *)

let test_risc_smc_invalidates () =
  let setup mem (cpu : Ferrite_risc.Cpu.t) =
    Memory.poke32_be mem code_base 0x38600005;
    (* li r3, 5 *)
    Memory.poke32_be mem (code_base + 4) 0x90A60008;
    (* stw r5, 8(r6): overwrites the li below *)
    Memory.poke32_be mem (code_base + 8) 0x38800001;
    (* li r4, 1 *)
    cpu.Ferrite_risc.Cpu.gpr.(5) <- 0x38800009 (* li r4, 9 *);
    cpu.Ferrite_risc.Cpu.gpr.(6) <- code_base;
    cpu.Ferrite_risc.Cpu.pc <- code_base
  in
  let sb, precise = risc_pair setup in
  let module Cpu = Ferrite_risc.Cpu in
  let ra = Cpu.run sb ~max_steps:3 in
  let rb = Cpu.run precise ~max_steps:3 in
  check_bool "same run result" true (ra = rb);
  check_int "rewritten instruction executed, not the stale block" 9
    sb.Cpu.gpr.(4);
  check_risc_agree "smc" sb precise;
  let _, _, insns, _ = Cpu.superblock_stats sb in
  check_bool "translated execution actually ran" true (insns > 0)

let test_cisc_smc_invalidates () =
  let setup mem (cpu : Ferrite_cisc.Cpu.t) =
    (* C7 05 disp32 imm32: mov dword [code_base+11], 0x22 — rewrites the
       immediate of the mov eax below, which sits in the same superblock *)
    Memory.poke8 mem code_base 0xC7;
    Memory.poke8 mem (code_base + 1) 0x05;
    Memory.poke32_le mem (code_base + 2) (code_base + 11);
    Memory.poke32_le mem (code_base + 6) 0x22;
    (* B8 imm32: mov eax, 0x11 *)
    Memory.poke8 mem (code_base + 10) 0xB8;
    Memory.poke32_le mem (code_base + 11) 0x11;
    cpu.Ferrite_cisc.Cpu.eip <- code_base
  in
  let sb, precise = cisc_pair setup in
  let module Cpu = Ferrite_cisc.Cpu in
  let ra = Cpu.run sb ~max_steps:2 in
  let rb = Cpu.run precise ~max_steps:2 in
  check_bool "same run result" true (ra = rb);
  check_int "rewritten immediate executed, not the stale block" 0x22
    sb.Cpu.regs.(Cpu.eax);
  check_cisc_agree "smc" sb precise

(* --- fallback edge: exception mid-block ----------------------------------- *)

(* A load faults in the middle of a superblock: the completed prefix must be
   charged, the faulting micro-op must not retire, and the exception must be
   delivered exactly as the precise interpreter delivers it. *)

let test_risc_midblock_exception () =
  let setup mem (cpu : Ferrite_risc.Cpu.t) =
    Memory.poke32_be mem code_base 0x38600005;
    (* li r3, 5 *)
    Memory.poke32_be mem (code_base + 4) 0x80860000;
    (* lwz r4, 0(r6) — r6 points into unmapped space *)
    cpu.Ferrite_risc.Cpu.gpr.(6) <- 0x7EAD0000;
    cpu.Ferrite_risc.Cpu.pc <- code_base
  in
  let sb, precise = risc_pair setup in
  let module Cpu = Ferrite_risc.Cpu in
  let ra = Cpu.run sb ~max_steps:10 in
  let rb = Cpu.run precise ~max_steps:10 in
  check_bool "same run result" true (ra = rb);
  (match ra with
  | 1, Cpu.Faulted (Ferrite_risc.Exn.Dsi _) -> ()
  | _ -> Alcotest.fail "expected (1, Faulted Dsi)");
  check_int "pc parked on the faulting instruction" (code_base + 4)
    sb.Cpu.pc;
  check_risc_agree "mid-block fault" sb precise

let test_cisc_midblock_exception () =
  let setup mem (cpu : Ferrite_cisc.Cpu.t) =
    (* B8 imm32: mov eax, 5 *)
    Memory.poke8 mem code_base 0xB8;
    Memory.poke32_le mem (code_base + 1) 0x5;
    (* 8B 05 disp32: mov eax, [0x7EAD0000] — unmapped *)
    Memory.poke8 mem (code_base + 5) 0x8B;
    Memory.poke8 mem (code_base + 6) 0x05;
    Memory.poke32_le mem (code_base + 7) 0x7EAD0000;
    cpu.Ferrite_cisc.Cpu.eip <- code_base
  in
  let sb, precise = cisc_pair setup in
  let module Cpu = Ferrite_cisc.Cpu in
  let ra = Cpu.run sb ~max_steps:10 in
  let rb = Cpu.run precise ~max_steps:10 in
  check_bool "same run result" true (ra = rb);
  (match ra with
  | 1, Cpu.Faulted (Ferrite_cisc.Exn.Page_fault _) -> ()
  | _ -> Alcotest.fail "expected (1, Faulted Page_fault)");
  check_int "eip parked on the faulting instruction" (code_base + 5)
    sb.Cpu.eip;
  check_cisc_agree "mid-block fault" sb precise

(* --- fallback edge: breakpoint armed over a cached block ------------------ *)

(* The injector arms an execute breakpoint between two runs. Even though a
   superblock covering the armed pc is cached and valid, the next run must
   take the precise path and report [Hit_ibp] before executing anything at
   the armed address. *)

let test_risc_breakpoint_forces_precise () =
  let setup mem (cpu : Ferrite_risc.Cpu.t) =
    Memory.poke32_be mem code_base 0x38600005;
    (* li r3, 5 *)
    Memory.poke32_be mem (code_base + 4) 0x38800001;
    (* li r4, 1 *)
    Memory.poke32_be mem (code_base + 8) 0x38A00002;
    (* li r5, 2 *)
    cpu.Ferrite_risc.Cpu.pc <- code_base
  in
  let sb, precise = risc_pair setup in
  let module Cpu = Ferrite_risc.Cpu in
  (* first run caches the block on the sb side *)
  check_bool "warm run" true (Cpu.run sb ~max_steps:3 = Cpu.run precise ~max_steps:3);
  let again (cpu : Cpu.t) =
    cpu.Cpu.pc <- code_base;
    cpu.Cpu.gpr.(4) <- 0;
    Debug_regs.set_instruction_bp cpu.Cpu.dr (code_base + 4);
    Cpu.run cpu ~max_steps:3
  in
  let ra = again sb in
  let rb = again precise in
  check_bool "same run result" true (ra = rb);
  (match ra with
  | 1, Cpu.Hit_ibp -> ()
  | _ -> Alcotest.fail "expected (1, Hit_ibp)");
  check_int "armed instruction did not execute" 0 sb.Cpu.gpr.(4);
  check_int "pc parked on the breakpoint" (code_base + 4) sb.Cpu.pc;
  check_risc_agree "armed bp" sb precise

(* --- fallback edge: block-boundary branch to an uncached pc --------------- *)

(* The builder follows an unconditional direct branch, so the pre-branch
   instructions, the branch and its target all land in one block — the
   skipped bytes never execute and the counters stay exact. *)

let test_risc_branch_to_uncached () =
  let setup mem (cpu : Ferrite_risc.Cpu.t) =
    Memory.poke32_be mem code_base 0x38600001;
    (* li r3, 1 *)
    Memory.poke32_be mem (code_base + 4) 0x4800000C;
    (* b +12 (to code_base+16) *)
    Memory.poke32_be mem (code_base + 8) 0x38600063;
    (* li r3, 99 — must be skipped *)
    Memory.poke32_be mem (code_base + 16) 0x38800002;
    (* li r4, 2 *)
    cpu.Ferrite_risc.Cpu.pc <- code_base
  in
  let sb, precise = risc_pair setup in
  let module Cpu = Ferrite_risc.Cpu in
  let ra = Cpu.run sb ~max_steps:3 in
  let rb = Cpu.run precise ~max_steps:3 in
  check_bool "same run result" true (ra = rb);
  check_int "retired across the boundary" 3 (fst ra);
  check_int "branch taken" 1 sb.Cpu.gpr.(3);
  check_int "target block executed" 2 sb.Cpu.gpr.(4);
  check_risc_agree "block-boundary branch" sb precise;
  let _, blocks, insns, _ = Cpu.superblock_stats sb in
  check_bool "the branch was followed into one block" true (blocks >= 1);
  check_int "all three instructions retired in superblocks" 3 insns

(* --- Cache_stats: overflow-safe merge, monotonicity ----------------------- *)

(* Pre-fix, [merge] summed fields with plain [+]: two near-[max_int] counters
   (a long campaign's worth of decode hits per worker) wrapped negative,
   breaking the documented monotonicity. The fixed merge saturates. *)

let test_cache_stats_merge_saturates () =
  let a = { Cache_stats.zero with Cache_stats.cs_decode_hits = max_int - 5 } in
  let b = { Cache_stats.zero with Cache_stats.cs_decode_hits = 10 } in
  let m = Cache_stats.merge a b in
  check_bool "merge never wraps negative" true
    (m.Cache_stats.cs_decode_hits >= 0);
  check_int "merge saturates at max_int" max_int m.Cache_stats.cs_decode_hits;
  check_bool "merge is monotone in both operands" true
    (m.Cache_stats.cs_decode_hits >= a.Cache_stats.cs_decode_hits
    && m.Cache_stats.cs_decode_hits >= b.Cache_stats.cs_decode_hits)

let test_cache_stats_delta_clamps () =
  let before = { Cache_stats.zero with Cache_stats.cs_sb_insns = 1000 } in
  let after = { Cache_stats.zero with Cache_stats.cs_sb_insns = 10 } in
  (* the machine was dropped and re-booted between readings *)
  let d = Cache_stats.delta ~before ~after in
  check_int "delta clamps at zero instead of going negative" 0
    d.Cache_stats.cs_sb_insns

(* Counters are machine-lifetime diagnostics: a snapshot/restore (the logical
   reboot between trials) must not reset or replay them. *)

let test_cache_stats_monotone_across_restore () =
  let sys = Boot.boot Image.Cisc in
  for _ = 1 to 50 do
    ignore (System.step sys)
  done;
  let snap = System.snapshot sys in
  let s1 = System.cache_stats sys in
  System.restore sys snap;
  for _ = 1 to 50 do
    ignore (System.step sys)
  done;
  let s2 = System.cache_stats sys in
  List.iter2
    (fun (name, v1) (_, v2) ->
      check_bool (name ^ " is monotone across restore") true (v2 >= v1))
    (Cache_stats.fields s1) (Cache_stats.fields s2)

(* --- differential property: whole campaigns, byte for byte ---------------- *)

let run_campaign ~sb ~executor cfg =
  Memory.set_superblocks_default sb;
  Fun.protect
    ~finally:(fun () -> Memory.set_superblocks_default true)
    (fun () ->
      Campaign.run ~executor ~tracer:Ferrite_trace.Tracer.default_config cfg)

(* The exact bytes the columnar store would persist for this campaign. *)
let store_bytes res =
  let path = Filename.temp_file "ferrite_sb" ".fstore" in
  let w = Ferrite_store.Store.create path in
  Ferrite_injection.Result_store.append_result w res;
  Ferrite_store.Store.close w;
  let ic = open_in_bin path in
  let bytes = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  bytes

let kinds = [| Target.Stack; Target.Data; Target.Code; Target.Register |]
let arches = [| Image.Cisc; Image.Risc |]
let models = Array.of_list Fault_model.sweep_models

let prop_superblocks_invisible =
  QCheck.Test.make
    ~name:"sb-on == sb-off (records, telemetry, traces, store bytes; jobs 1/2/4)"
    ~count:4
    QCheck.(
      quad (int_bound 0xFFFF) (int_bound 3) (int_bound 1)
        (int_bound (Array.length models - 1)))
    (fun (seed, ki, ai, mi) ->
      let cfg =
        {
          (Campaign.default ~arch:arches.(ai) ~kind:kinds.(ki) ~injections:5) with
          Campaign.seed = Int64.of_int (succ seed);
          fault_model = models.(mi);
          engine = { Engine.default_config with Engine.step_budget = 200_000 };
        }
      in
      let base = run_campaign ~sb:false ~executor:Executor.Sequential cfg in
      let seq = run_campaign ~sb:true ~executor:Executor.Sequential cfg in
      let par2 =
        run_campaign ~sb:true ~executor:(Executor.Parallel { domains = 2 }) cfg
      in
      let par4 =
        run_campaign ~sb:true ~executor:(Executor.Parallel { domains = 4 }) cfg
      in
      let boots_eq p =
        Ferrite_trace.Telemetry.with_boots base.Campaign.telemetry
          p.Campaign.reboots
        = Ferrite_trace.Telemetry.with_boots p.Campaign.telemetry
            p.Campaign.reboots
      in
      base.Campaign.records = seq.Campaign.records
      && base.Campaign.telemetry = seq.Campaign.telemetry
      && base.Campaign.traces = seq.Campaign.traces
      && store_bytes base = store_bytes seq
      (* parallel runs may differ in tl_boots (one boot per worker) but in
         nothing else *)
      && base.Campaign.records = par2.Campaign.records
      && base.Campaign.traces = par2.Campaign.traces
      && boots_eq par2
      && base.Campaign.records = par4.Campaign.records
      && base.Campaign.traces = par4.Campaign.traces
      && boots_eq par4
      && store_bytes seq = store_bytes par2)

let test_sb_stats_reflect_mode () =
  let cfg =
    {
      (Campaign.default ~arch:Image.Cisc ~kind:Target.Stack ~injections:3) with
      Campaign.seed = 0xBEEFL;
      engine = { Engine.default_config with Engine.step_budget = 100_000 };
    }
  in
  let off = run_campaign ~sb:false ~executor:Executor.Sequential cfg in
  check_int "no blocks built with superblocks off" 0
    off.Campaign.cache.Cache_stats.cs_sb_blocks;
  check_int "no translated instructions with superblocks off" 0
    off.Campaign.cache.Cache_stats.cs_sb_insns;
  let on = run_campaign ~sb:true ~executor:Executor.Sequential cfg in
  check_bool "translated run retires instructions in blocks" true
    (on.Campaign.cache.Cache_stats.cs_sb_insns > 0);
  check_bool "pre-warm installed entries" true
    (on.Campaign.cache.Cache_stats.cs_prewarmed > 0);
  check_bool "identical records regardless" true
    (off.Campaign.records = on.Campaign.records)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ferrite_superblocks"
    [
      ( "fallback edges",
        [
          Alcotest.test_case "risc self-modifying store" `Quick
            test_risc_smc_invalidates;
          Alcotest.test_case "cisc self-modifying store" `Quick
            test_cisc_smc_invalidates;
          Alcotest.test_case "risc mid-block exception" `Quick
            test_risc_midblock_exception;
          Alcotest.test_case "cisc mid-block exception" `Quick
            test_cisc_midblock_exception;
          Alcotest.test_case "risc armed breakpoint" `Quick
            test_risc_breakpoint_forces_precise;
          Alcotest.test_case "risc branch to uncached pc" `Quick
            test_risc_branch_to_uncached;
        ] );
      ( "cache stats",
        [
          Alcotest.test_case "merge saturates" `Quick
            test_cache_stats_merge_saturates;
          Alcotest.test_case "delta clamps" `Quick test_cache_stats_delta_clamps;
          Alcotest.test_case "monotone across restore" `Quick
            test_cache_stats_monotone_across_restore;
        ] );
      ( "differential",
        [
          q prop_superblocks_invisible;
          Alcotest.test_case "sb stats reflect mode" `Quick
            test_sb_stats_reflect_mode;
        ] );
    ]
