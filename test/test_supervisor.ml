(* Tests for the supervision layer: journal framing and torn-tail recovery,
   checkpoint/resume (including a SIGKILL mid-run), crash containment with
   retry/backoff and quarantine, and plan-hash binding. *)

open Ferrite_injection
module Image = Ferrite_kir.Image
module Tracer = Ferrite_trace.Tracer
module Event = Ferrite_trace.Event
module Telemetry = Ferrite_trace.Telemetry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_temp f =
  let path = Filename.temp_file "ferrite-test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let file_size path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  n

let truncate_to path n =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd n;
  Unix.close fd

let stamp = { Event.s_cycles = 0; s_instructions = 0; s_pc = 0; s_function = None }

(* a small but structurally rich entry: record + stats + a non-empty trace *)
let mk_entry i =
  let tracer = Tracer.create Tracer.default_config in
  Tracer.record tracer stamp (Event.Trial_begin { trial = i; target = "t" });
  Tracer.record tracer stamp (Event.Trial_end { trial = i; outcome = "ok" });
  {
    Journal.je_index = i;
    je_record =
      {
        Outcome.r_target = Target.Data_target { addr = 4 * i; bit = i mod 8 };
        r_outcome = (if i mod 2 = 0 then Outcome.Not_manifested else Outcome.Hang);
        r_activated = true;
        r_activation_cycle = Some (100 + i);
        r_model = Ferrite_injection.Fault_model.Single_bit_transient;
      };
    je_stats =
      {
        Collector.st_received = i;
        st_lost = i mod 3;
        st_retransmitted = 0;
        st_gave_up = 0;
        st_dup_dropped = 0;
        st_by_model = (if i > 0 then [ ("single_bit", i) ] else []);
      };
    je_trace = Tracer.trial_of tracer ~index:i ~target:"t" ~outcome:"ok";
  }

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ---------- journal framing ---------- *)

let test_journal_roundtrip () =
  with_temp (fun path ->
      let hash = Journal.plan_hash_of_string "roundtrip" in
      let w, rc = Journal.open_for_append ~path ~plan_hash:hash in
      check_int "fresh journal recovers nothing" 0 (List.length rc.Journal.rc_entries);
      let entries = List.init 5 mk_entry in
      List.iter (Journal.append w) entries;
      Journal.close w;
      let rc = Journal.recover ~path ~plan_hash:hash in
      check_bool "entries round-trip" true (rc.Journal.rc_entries = entries);
      check_int "nothing truncated" 0 rc.Journal.rc_truncated_bytes;
      check_int "valid bytes = file size" (file_size path) rc.Journal.rc_valid_bytes;
      (* reopening appends after the existing frames *)
      let w, rc2 = Journal.open_for_append ~path ~plan_hash:hash in
      check_int "reopen preserves entries" 5 (List.length rc2.Journal.rc_entries);
      Journal.append w (mk_entry 5);
      Journal.close w;
      let rc3 = Journal.recover ~path ~plan_hash:hash in
      check_bool "append after reopen" true (rc3.Journal.rc_entries = List.init 6 mk_entry))

(* The checkpoint property: however the file is cut (mid-frame, mid-header,
   inside appended garbage), recovery returns the longest valid prefix of
   what was appended and never raises. *)
let prop_journal_truncation =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"recovery of a torn journal is the longest valid prefix"
       ~count:80
       QCheck.(triple (int_range 0 6) (int_range 0 10_000) (int_range 0 48))
       (fun (k, cut_frac, garbage) ->
         with_temp (fun path ->
             let hash = Journal.plan_hash_of_string "torn" in
             let w, _ = Journal.open_for_append ~path ~plan_hash:hash in
             let entries = List.init k mk_entry in
             List.iter (Journal.append w) entries;
             Journal.close w;
             let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
             for i = 1 to garbage do
               output_char oc (Char.chr (i * 37 mod 256))
             done;
             close_out oc;
             let cut = cut_frac * file_size path / 10_000 in
             truncate_to path cut;
             let rc = Journal.recover ~path ~plan_hash:hash in
             let n = List.length rc.Journal.rc_entries in
             n <= k
             && rc.Journal.rc_entries = take n entries
             && rc.Journal.rc_valid_bytes + rc.Journal.rc_truncated_bytes = cut
             && (cut < Journal.header_size || rc.Journal.rc_valid_bytes >= Journal.header_size))))

let test_header_mismatch () =
  with_temp (fun path ->
      let w, _ = Journal.open_for_append ~path ~plan_hash:7L in
      Journal.append w (mk_entry 0);
      Journal.close w;
      (match Journal.recover ~path ~plan_hash:9L with
      | exception Journal.Header_mismatch { hm_expected = 9L; hm_found = 7L; _ } -> ()
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "mismatched plan hash accepted");
      match Journal.recover ~path ~plan_hash:7L with
      | rc -> check_int "matching hash still recovers" 1 (List.length rc.Journal.rc_entries))

let test_not_a_journal () =
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_string oc (String.make 64 'X');
      close_out oc;
      match Journal.recover ~path ~plan_hash:1L with
      | exception Journal.Not_a_journal _ -> ()
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "a foreign file was read as a journal")

(* ---------- containment ---------- *)

let small_cfg injections =
  { (Campaign.default ~arch:Image.Cisc ~kind:Target.Stack ~injections) with
    Campaign.seed = 0x2004L }

let supervision_with ?(policy = Supervisor.instant_policy) ?(chaos = Supervisor.no_chaos)
    ?journal ?(resume = false) () =
  {
    Campaign.sv_policy = policy;
    sv_chaos = chaos;
    sv_journal = journal;
    sv_resume = resume;
  }

let test_flaky_trial_retried_clean () =
  let cfg = small_cfg 12 in
  let chaos = { Supervisor.no_chaos with Supervisor.ch_raise = [ (4, 1) ] } in
  let undisturbed = Campaign.run cfg in
  let r = Campaign.run ~supervision:(supervision_with ~chaos ()) cfg in
  check_bool "retried trial reproduces the undisturbed record" true
    (r.Campaign.records = undisturbed.Campaign.records);
  match r.Campaign.supervision with
  | Some sup ->
    check_int "one retry" 1 sup.Supervisor.sup_retries;
    check_int "no quarantine" 0 (List.length sup.Supervisor.sup_quarantined)
  | None -> Alcotest.fail "no supervision report"

let test_dead_trial_quarantined () =
  let cfg = small_cfg 12 in
  let chaos =
    { Supervisor.no_chaos with Supervisor.ch_raise = [ (2, Supervisor.always) ] }
  in
  let undisturbed = Campaign.run cfg in
  let r = Campaign.run ~supervision:(supervision_with ~chaos ()) cfg in
  (match (List.nth r.Campaign.records 2).Outcome.r_outcome with
  | Outcome.Infrastructure_failure { if_attempts; if_error } ->
    check_int "attempts = 1 + max_retries" 3 if_attempts;
    check_bool "reason names the planted fault" true (contains ~needle:"chaos" if_error)
  | o -> Alcotest.failf "expected quarantine, got %s" (Outcome.outcome_label o));
  List.iteri
    (fun i r ->
      if i <> 2 then
        check_bool (Printf.sprintf "trial %d undisturbed" i) true
          (r = List.nth undisturbed.Campaign.records i))
    r.Campaign.records;
  let s = Campaign.summarize r in
  check_int "quarantine excluded from the denominator" 11 s.Campaign.injected;
  check_int "quarantine surfaced separately" 1 s.Campaign.infrastructure

let test_host_deadline_overrun () =
  let cfg = small_cfg 3 in
  let policy =
    { Supervisor.instant_policy with
      Supervisor.sp_max_retries = 1;
      sp_host_deadline = Some 1e-9 }
  in
  let r = Campaign.run ~supervision:(supervision_with ~policy ()) cfg in
  List.iter
    (fun rec_ ->
      match rec_.Outcome.r_outcome with
      | Outcome.Infrastructure_failure { if_attempts = 2; if_error } ->
        check_bool "reason names the deadline" true (contains ~needle:"deadline" if_error)
      | o -> Alcotest.failf "expected deadline quarantine, got %s" (Outcome.outcome_label o))
    r.Campaign.records

let test_policy_validation () =
  check_bool "negative retries rejected" true
    (match
       Supervisor.validated_policy
         { Supervisor.default_policy with Supervisor.sp_max_retries = -1 }
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "non-positive deadline rejected" true
    (match
       Supervisor.validated_policy
         { Supervisor.default_policy with Supervisor.sp_host_deadline = Some 0.0 }
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let p = Supervisor.default_policy in
  check_bool "backoff grows then caps" true
    (Supervisor.backoff_seconds p 0 = p.Supervisor.sp_backoff_base
    && Supervisor.backoff_seconds p 1 > Supervisor.backoff_seconds p 0
    && Supervisor.backoff_seconds p 10 = p.Supervisor.sp_backoff_max)

(* ---------- checkpoint / resume ---------- *)

let boots_blind t = Telemetry.with_boots t 0

let check_resume_equal label (reference : Campaign.result) (r : Campaign.result) =
  check_bool (label ^ ": records") true (r.Campaign.records = reference.Campaign.records);
  check_bool (label ^ ": collector") true
    (r.Campaign.collector = reference.Campaign.collector);
  check_bool (label ^ ": traces") true (r.Campaign.traces = reference.Campaign.traces);
  check_bool (label ^ ": telemetry") true
    (boots_blind r.Campaign.telemetry = boots_blind reference.Campaign.telemetry)

(* The golden resilience test: journal a run under --jobs 1, SIGKILL it
   mid-campaign, then resume under jobs 1, 2 and 4 — every resume must equal
   the uninterrupted run bit for bit. *)
let test_kill_and_resume () =
  let cfg = small_cfg 40 in
  let reference = Campaign.run cfg in
  with_temp (fun path ->
      Sys.remove path;
      (match Unix.fork () with
      | 0 ->
        (* child: journal the campaign; the parent kills us mid-run *)
        (try
           ignore
             (Campaign.run ~supervision:(supervision_with ~journal:path ()) cfg)
         with _ -> ());
        Unix._exit 0
      | pid ->
        (* wait for a few journalled frames, then kill without warning *)
        let deadline = Unix.gettimeofday () +. 60.0 in
        let rec poll () =
          let sz = try file_size path with Sys_error _ -> 0 in
          if sz <= Journal.header_size + 64 && Unix.gettimeofday () < deadline then begin
            Unix.sleepf 0.01;
            poll ()
          end
        in
        poll ();
        Unix.kill pid Sys.sigkill;
        ignore (Unix.waitpid [] pid));
      let recovered =
        (Journal.recover ~path
           ~plan_hash:
             (Journal.plan_hash_of_string
                (Campaign.plan_fingerprint
                   ~supervision:(supervision_with ~journal:path ~resume:true ())
                   cfg)))
          .Journal.rc_entries
      in
      check_bool "the kill landed mid-run" true (List.length recovered < 40);
      List.iter
        (fun jobs ->
          let r =
            Campaign.run
              ~supervision:(supervision_with ~journal:path ~resume:true ())
              ~executor:(Executor.of_jobs jobs) cfg
          in
          check_resume_equal (Printf.sprintf "jobs %d" jobs) reference r)
        [ 1; 2; 4 ])

let test_resume_rejects_other_plan () =
  let cfg = small_cfg 10 in
  with_temp (fun path ->
      ignore (Campaign.run ~supervision:(supervision_with ~journal:path ()) cfg);
      let other = { cfg with Campaign.seed = 0xBADL } in
      match
        Campaign.run ~supervision:(supervision_with ~journal:path ~resume:true ()) other
      with
      | exception Journal.Header_mismatch _ -> ()
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "journal from a different seed accepted")

let test_fingerprint_is_jobs_independent () =
  let cfg = small_cfg 10 in
  (* the fingerprint is a function of the config alone — executors never
     appear in it, so this is mostly documentation-by-test *)
  check_bool "same config, same fingerprint" true
    (Campaign.plan_fingerprint cfg = Campaign.plan_fingerprint cfg);
  check_bool "seed changes it" true
    (Campaign.plan_fingerprint cfg
    <> Campaign.plan_fingerprint { cfg with Campaign.seed = 1L });
  check_bool "kind changes it" true
    (Campaign.plan_fingerprint cfg
    <> Campaign.plan_fingerprint { cfg with Campaign.kind = Target.Data });
  check_bool "chaos changes it" true
    (Campaign.plan_fingerprint cfg
    <> Campaign.plan_fingerprint
         ~supervision:
           (supervision_with
              ~chaos:{ Supervisor.no_chaos with Supervisor.ch_raise = [ (0, 1) ] }
              ())
         cfg)

let () =
  Alcotest.run "ferrite_supervisor"
    [
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          prop_journal_truncation;
          Alcotest.test_case "header mismatch" `Quick test_header_mismatch;
          Alcotest.test_case "not a journal" `Quick test_not_a_journal;
        ] );
      ( "containment",
        [
          Alcotest.test_case "flaky trial retried clean" `Quick test_flaky_trial_retried_clean;
          Alcotest.test_case "dead trial quarantined" `Quick test_dead_trial_quarantined;
          Alcotest.test_case "host deadline overrun" `Quick test_host_deadline_overrun;
          Alcotest.test_case "policy validation" `Quick test_policy_validation;
        ] );
      ( "resume",
        [
          Alcotest.test_case "kill and resume" `Quick test_kill_and_resume;
          Alcotest.test_case "other plan rejected" `Quick test_resume_rejects_other_plan;
          Alcotest.test_case "fingerprint jobs-independent" `Quick
            test_fingerprint_is_jobs_independent;
        ] );
    ]
