(* Tests for the trace library: ring-buffer flight-recorder semantics,
   telemetry counting/merging, JSONL export, the golden scenario timelines
   (byte-exact against committed files) and executor independence of traces
   and telemetry. *)

open Ferrite_trace
module Image = Ferrite_kir.Image
module Campaign = Ferrite_injection.Campaign
module Executor = Ferrite_injection.Executor
module Target = Ferrite_injection.Target

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let stamp i =
  { Event.s_cycles = 100 * i; s_instructions = 10 * i; s_pc = 0xC0100000 + i; s_function = None }

let flip i = Event.Flip { space = Event.Data_space; addr = 0xC0400000 + i; bit = i mod 32 }

(* ---------- ring buffer ---------- *)

let test_ring_keeps_most_recent () =
  let t = Tracer.create { Tracer.trace_capacity = 4 } in
  for i = 0 to 9 do
    Tracer.record t (stamp i) (flip i)
  done;
  check_int "recorded" 10 (Tracer.recorded t);
  check_int "dropped" 6 (Tracer.dropped t);
  let events = Tracer.events t in
  check_int "retained" 4 (List.length events);
  List.iteri
    (fun k (s, _) -> check_int "oldest-first suffix" (100 * (6 + k)) s.Event.s_cycles)
    events

let test_ring_under_capacity () =
  let t = Tracer.create { Tracer.trace_capacity = 8 } in
  for i = 0 to 2 do
    Tracer.record t (stamp i) (flip i)
  done;
  check_int "no drops" 0 (Tracer.dropped t);
  check_int "all retained" 3 (List.length (Tracer.events t))

let test_telemetry_only_keeps_counters () =
  let t = Tracer.create Tracer.telemetry_only in
  Tracer.record t (stamp 0) (Event.Trial_begin { trial = 0; target = "t" });
  Tracer.record t (stamp 1) (flip 1);
  Tracer.record t (stamp 2) (Event.Reinject { addr = 0; bit = 1 });
  Tracer.record t (stamp 3) (Event.Activated { via = "data watchpoint" });
  check_int "no events retained" 0 (List.length (Tracer.events t));
  let tl = Tracer.telemetry t in
  check_int "trials" 1 tl.Telemetry.tl_trials;
  check_int "flips include reinjections" 2 tl.Telemetry.tl_flips;
  check_int "reinjections" 1 tl.Telemetry.tl_reinjections;
  check_int "activations" 1 tl.Telemetry.tl_activations;
  check_int "events counted" 4 tl.Telemetry.tl_events

let test_negative_capacity_rejected () =
  match Tracer.create { Tracer.trace_capacity = -1 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative capacity must be rejected"

(* ---------- telemetry ---------- *)

let test_counting_semantics () =
  let t = Tracer.create Tracer.telemetry_only in
  Tracer.record t (stamp 0) (Event.Bp_hit { addr = 0; stray = true });
  Tracer.record t (stamp 1) (Event.Bp_hit { addr = 0; stray = false });
  Tracer.record t (stamp 2) (Event.Collector_send { delivered = true });
  Tracer.record t (stamp 3) (Event.Collector_send { delivered = false });
  Tracer.record t (stamp 4) (Event.Watchdog_expired { steps = 100 });
  Tracer.record t (stamp 5) (Event.Exn_raised { fault = "#UD" });
  let tl = Tracer.telemetry t in
  check_int "only stray bp hits counted" 1 tl.Telemetry.tl_stray_breakpoints;
  check_int "dumps sent" 1 tl.Telemetry.tl_dumps_sent;
  check_int "dumps lost" 1 tl.Telemetry.tl_dumps_lost;
  check_int "watchdogs" 1 tl.Telemetry.tl_watchdog_expiries;
  check_int "exceptions" 1 tl.Telemetry.tl_exceptions

let test_merge_is_componentwise_sum () =
  let a = { Telemetry.zero with Telemetry.tl_trials = 2; tl_flips = 5; tl_dumps_lost = 1 } in
  let b = { Telemetry.zero with Telemetry.tl_trials = 3; tl_flips = 7; tl_boots = 2 } in
  let m = Telemetry.merge a b in
  check_int "trials" 5 m.Telemetry.tl_trials;
  check_int "flips" 12 m.Telemetry.tl_flips;
  check_int "dumps lost" 1 m.Telemetry.tl_dumps_lost;
  check_int "boots" 2 m.Telemetry.tl_boots;
  check_bool "zero is identity" true (Telemetry.merge Telemetry.zero a = a)

(* ---------- jsonl ---------- *)

let test_jsonl_line_shape () =
  let s =
    { Event.s_cycles = 42; s_instructions = 7; s_pc = 0xC0100B36; s_function = Some "getblk" }
  in
  let line =
    Jsonl.event_line ~trial:3 (s, Event.Flip { space = Event.Code_space; addr = 0xC0100B36; bit = 8 })
  in
  check_string "flip line"
    "{\"trial\":3,\"cycles\":42,\"instructions\":7,\"pc\":\"c0100b36\",\"fn\":\"getblk\",\"event\":\"flip\",\"space\":\"code\",\"addr\":\"c0100b36\",\"bit\":8}"
    line

let test_jsonl_escaping () =
  let s = { Event.s_cycles = 0; s_instructions = 0; s_pc = 0; s_function = None } in
  let line = Jsonl.event_line ~trial:0 (s, Event.Activated { via = "a\"b\\c\nd" }) in
  check_bool "quote escaped" true
    (let re = {|"via":"a\"b\\c\nd"|} in
     let rec contains i =
       if i + String.length re > String.length line then false
       else if String.sub line i (String.length re) = re then true
       else contains (i + 1)
     in
     contains 0);
  check_bool "fn null" true
    (let re = {|"fn":null|} in
     let rec contains i =
       if i + String.length re > String.length line then false
       else if String.sub line i (String.length re) = re then true
       else contains (i + 1)
     in
     contains 0)

(* ---------- golden scenario timelines ---------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_golden name rendered =
  let path = Filename.concat "golden" (name ^ ".trace") in
  if not (Sys.file_exists path) then
    Alcotest.failf "golden file %s missing (regenerate with: ferrite trace %s)" path name
  else check_string (name ^ " timeline is byte-identical to the golden file") (read_file path)
         rendered

let scenario_render ?executor name =
  match Ferrite.Scenario.find name with
  | None -> Alcotest.failf "unknown scenario %s" name
  | Some sc -> Ferrite.Scenario.render (Ferrite.Scenario.run ?executor sc)

let test_golden_fig7 () = check_golden "fig7" (scenario_render "fig7")
let test_golden_fig13 () = check_golden "fig13" (scenario_render "fig13")
let test_golden_fig14 () = check_golden "fig14" (scenario_render "fig14")

let test_scenarios_executor_independent () =
  List.iter
    (fun sc ->
      let name = sc.Ferrite.Scenario.sc_name in
      check_string
        (name ^ " identical under sequential and parallel executors")
        (scenario_render ~executor:Executor.Sequential name)
        (scenario_render ~executor:(Executor.Parallel { domains = 4 }) name))
    Ferrite.Scenario.all

(* ---------- campaign traces across executors ---------- *)

let test_campaign_traces_executor_independent () =
  let cfg =
    {
      (Campaign.default ~arch:Image.Cisc ~kind:Target.Data ~injections:12) with
      Campaign.seed = 0xBEEFL;
    }
  in
  let tracer = { Tracer.trace_capacity = 256 } in
  let seq = Campaign.run ~executor:Executor.Sequential ~tracer cfg in
  let par = Campaign.run ~executor:(Executor.Parallel { domains = 4 }) ~tracer cfg in
  check_string "rendered trials identical"
    (Printer.render_trials seq.Campaign.traces)
    (Printer.render_trials par.Campaign.traces);
  check_string "jsonl identical"
    (String.concat "\n" (List.concat_map Jsonl.trial_lines seq.Campaign.traces))
    (String.concat "\n" (List.concat_map Jsonl.trial_lines par.Campaign.traces));
  (* telemetry: identical except tl_boots, which is per-worker *)
  check_bool "telemetry identical modulo boots" true
    (Telemetry.with_boots seq.Campaign.telemetry 0
    = Telemetry.with_boots par.Campaign.telemetry 0);
  (* the telemetry invariants documented in Telemetry's interface *)
  let tl = seq.Campaign.telemetry in
  check_int "every trial begins" cfg.Campaign.injections tl.Telemetry.tl_trials;
  check_bool "activations bounded" true
    (tl.Telemetry.tl_activations <= tl.Telemetry.tl_trials);
  check_bool "flips cover reinjections" true
    (tl.Telemetry.tl_flips >= tl.Telemetry.tl_reinjections)

let () =
  Alcotest.run "ferrite_trace"
    [
      ( "ring",
        [
          Alcotest.test_case "keeps most recent" `Quick test_ring_keeps_most_recent;
          Alcotest.test_case "under capacity" `Quick test_ring_under_capacity;
          Alcotest.test_case "telemetry-only" `Quick test_telemetry_only_keeps_counters;
          Alcotest.test_case "negative capacity" `Quick test_negative_capacity_rejected;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "counting semantics" `Quick test_counting_semantics;
          Alcotest.test_case "merge" `Quick test_merge_is_componentwise_sum;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "line shape" `Quick test_jsonl_line_shape;
          Alcotest.test_case "escaping" `Quick test_jsonl_escaping;
        ] );
      ( "golden",
        [
          Alcotest.test_case "fig7" `Quick test_golden_fig7;
          Alcotest.test_case "fig13" `Quick test_golden_fig13;
          Alcotest.test_case "fig14" `Quick test_golden_fig14;
          Alcotest.test_case "executor independent" `Quick test_scenarios_executor_independent;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "traces across executors" `Quick
            test_campaign_traces_executor_independent;
        ] );
    ]
