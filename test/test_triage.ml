(* Triage: mechanical bucketing of crashes into the paper's §5 root-cause
   families, and the totality of dump capture/rendering — a crash dump must
   come out of an arbitrarily wild machine without raising. *)

open Ferrite_kernel
open Ferrite_injection
module Image = Ferrite_kir.Image
module Scenario = Ferrite.Scenario

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---------- tags ---------- *)

let test_tags_roundtrip () =
  List.iter
    (fun b -> check_bool (Triage.tag b) true (Triage.of_tag (Triage.tag b) = Some b))
    Triage.all;
  check_bool "unknown tag rejected" true (Triage.of_tag "not-a-bucket" = None);
  let tags = List.map Triage.tag Triage.all in
  check_bool "tags distinct" true (List.length (List.sort_uniq compare tags) = List.length tags)

(* ---------- the §5 case studies bucket as the paper read them ---------- *)

let scenario_bucket ?(jobs = 1) name =
  match Scenario.find name with
  | None -> Alcotest.failf "no scenario %s" name
  | Some sc ->
    let r = Scenario.run ~executor:(Executor.of_jobs jobs) sc in
    (match Triage.of_record r.Scenario.outcome r.Scenario.dump with
    | Some b -> Triage.tag b
    | None -> "(not a failure)")

let test_section5_families () =
  check_string "Fig. 7 is a stack overwrite (sec. 5.1)" "stack_overwrite"
    (scenario_bucket "fig7");
  check_string "Fig. 13 is bad-pointer propagation (sec. 5.3)" "bad_pointer"
    (scenario_bucket "fig13");
  check_string "Fig. 14 is a decoder resync (sec. 5.4)" "resync" (scenario_bucket "fig14")

let test_buckets_jobs_invariant () =
  List.iter
    (fun sc ->
      let name = sc.Scenario.sc_name in
      let reference = scenario_bucket ~jobs:1 name in
      List.iter
        (fun jobs ->
          check_string
            (Printf.sprintf "%s bucket with --jobs %d" name jobs)
            reference
            (scenario_bucket ~jobs name))
        [ 2; 4 ])
    Scenario.all

(* ---------- outcome-level buckets ---------- *)

let test_of_record_outcomes () =
  (* replay fig7 once to get a real Known_crash record, then rewrite its
     outcome to probe the non-crash paths of [of_record] *)
  let sc = Option.get (Scenario.find "fig7") in
  let r = Scenario.run sc in
  let record = r.Scenario.outcome in
  let with_outcome o = { record with Outcome.r_outcome = o } in
  check_bool "hang is a silent drop" true
    (Triage.of_record (with_outcome Outcome.Hang) None = Some Triage.Silent_drop);
  check_bool "unknown crash is a silent drop" true
    (Triage.of_record (with_outcome Outcome.Unknown_crash) None = Some Triage.Silent_drop);
  check_bool "not manifested is not a failure" true
    (Triage.of_record (with_outcome Outcome.Not_manifested) None = None);
  check_bool "FSV is not triaged as a crash" true
    (Triage.of_record (with_outcome Outcome.Fail_silence_violation) None = None);
  (* the dump-free fallback (journal-resumed trials) still buckets crashes *)
  (match record.Outcome.r_outcome with
  | Outcome.Known_crash _ ->
    check_bool "dump-free fallback buckets the crash" true
      (Triage.of_record record None <> None)
  | o -> Alcotest.failf "fig7 replay did not crash (%s)" (Outcome.outcome_label o))

(* ---------- capture/render totality over wild machines ---------- *)

let wild_faults_cisc =
  [
    System.Cisc_fault (Ferrite_cisc.Exn.Page_fault { addr = 0; write = false; fetch = false });
    System.Cisc_fault Ferrite_cisc.Exn.Invalid_opcode;
    System.Cisc_fault (Ferrite_cisc.Exn.General_protection { addr = None });
    System.Cisc_fault Ferrite_cisc.Exn.Divide_error;
    System.Cisc_fault (Ferrite_cisc.Exn.Software_panic { message = "wild" });
  ]

let wild_faults_risc =
  [
    System.Risc_fault (Ferrite_risc.Exn.Dsi { addr = 0; write = true; protection = false });
    System.Risc_fault (Ferrite_risc.Exn.Isi { addr = 0xDEAD_BEEF });
    System.Risc_fault Ferrite_risc.Exn.Program_illegal;
    System.Risc_fault Ferrite_risc.Exn.Program_trap;
    System.Risc_fault (Ferrite_risc.Exn.Alignment { addr = 3 });
  ]

(* One machine wilder than any injection can make it: every register (PC, SP
   included) forced to an arbitrary word, optionally with the symbol table
   stripped. Capture and render must stay total. *)
let prop_capture_render_total =
  QCheck.Test.make ~name:"capture+render never raise on wild states" ~count:60
    QCheck.(
      triple bool (* arch: cisc/risc *)
        (pair (list_of_size (QCheck.Gen.return 8) (int_bound 0xFFFF_FFFF)) bool
        (* reg values, strip symtab *))
        (int_bound 4) (* fault pick *))
    (fun (cisc, (words, strip), fault_ix) ->
      let arch = if cisc then Image.Cisc else Image.Risc in
      let sys = Boot.boot arch in
      let word i = match List.nth_opt words i with Some w -> w | None -> 0 in
      (match sys.System.cpu with
      | System.Ccpu c ->
        Array.iteri (fun i _ -> c.Ferrite_cisc.Cpu.regs.(i) <- word (i mod 8))
          c.Ferrite_cisc.Cpu.regs;
        c.Ferrite_cisc.Cpu.eip <- word 0;
        c.Ferrite_cisc.Cpu.cr2 <- word 1
      | System.Rcpu c ->
        Array.iteri (fun i _ -> c.Ferrite_risc.Cpu.gpr.(i) <- word (i mod 8))
          c.Ferrite_risc.Cpu.gpr;
        c.Ferrite_risc.Cpu.pc <- word 2;
        c.Ferrite_risc.Cpu.lr <- word 3);
      if strip then Hashtbl.reset sys.System.image.Image.img_symtab;
      let faults = if cisc then wild_faults_cisc else wild_faults_risc in
      let fault = List.nth faults (fault_ix mod List.length faults) in
      let dump = Crash_dump.capture ~events:[ "cycle 1: step" ] sys fault in
      let text = Oops.render_dump dump in
      ignore (Triage.classify dump);
      String.length text > 0)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ferrite_triage"
    [
      ( "buckets",
        [
          Alcotest.test_case "tags roundtrip" `Quick test_tags_roundtrip;
          Alcotest.test_case "sec. 5 case studies" `Quick test_section5_families;
          Alcotest.test_case "jobs-invariant" `Quick test_buckets_jobs_invariant;
          Alcotest.test_case "outcome-level buckets" `Quick test_of_record_outcomes;
        ] );
      ("totality", [ q prop_capture_render_total ]);
    ]
