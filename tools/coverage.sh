#!/bin/sh
# Coverage workflow for ferrite.
#
# Every library carries an `(instrumentation (backend bisect_ppx))` stanza;
# dune resolves the backend lazily, so the instrumentation costs nothing
# unless explicitly requested. `dune build @coverage` (which this script
# wraps) therefore works on any machine, while the actual measurement needs
# the bisect_ppx opam package.
#
# Usage: tools/coverage.sh            # run tests instrumented, print summary
#        tools/coverage.sh html       # also render the HTML report

set -e
cd "$(dirname "$0")/.."

if ! ocamlfind query bisect_ppx >/dev/null 2>&1; then
  echo "coverage: bisect_ppx is not installed in this switch." >&2
  echo "coverage: validating the instrumentation wiring only (dune build @coverage)." >&2
  echo "coverage: to measure for real:  opam install bisect_ppx  &&  tools/coverage.sh" >&2
  dune build @coverage
  exit 0
fi

rm -rf _coverage
mkdir -p _coverage
BISECT_FILE="$(pwd)/_coverage/bisect" dune runtest --force --instrument-with bisect_ppx
bisect-ppx-report summary --coverage-path _coverage
if [ "$1" = "html" ]; then
  bisect-ppx-report html --coverage-path _coverage -o _coverage/html
  echo "coverage: report in _coverage/html/index.html"
fi
